// Unit tests for the core fabric: sites, Grid3 assembly, iGOC, failure
// injection, roster, milestones.
#include <gtest/gtest.h>

#include "core/failure.h"
#include "core/grid3.h"
#include "core/igoc.h"
#include "core/metrics.h"
#include "core/roster.h"
#include "core/site.h"
#include "mds/schema.h"

namespace grid3::core {
namespace {

TEST(TroubleTickets, OpenCloseAndMetrics) {
  TroubleTicketSystem tickets;
  const auto id = tickets.open("BNL", "disk-fill", Time::hours(1));
  EXPECT_EQ(tickets.open_count(), 1u);
  EXPECT_TRUE(tickets.close(id, Time::hours(5)));
  EXPECT_FALSE(tickets.close(id, Time::hours(6)));  // already closed
  EXPECT_EQ(tickets.open_count(), 0u);
  EXPECT_EQ(tickets.mean_resolution(), Time::hours(4));
}

TEST(Roster, TwentySevenSitesShapedLikeGrid3) {
  const auto roster = grid3_roster();
  EXPECT_EQ(roster.size(), 27u);
  int cpus = 0;
  int dedicated_cpus = 0;
  bool has_condor = false, has_pbs = false, has_lsf = false;
  for (const auto& cfg : roster) {
    cpus += cfg.cpus;
    if (cfg.policy.dedicated) dedicated_cpus += cfg.cpus;
    has_condor |= cfg.lrms == LrmsType::kCondor;
    has_pbs |= cfg.lrms == LrmsType::kPbs;
    has_lsf |= cfg.lrms == LrmsType::kLsf;
  }
  // Paper: >2500 CPUs most of the time, peak 2800+.
  EXPECT_GE(cpus, 2500);
  EXPECT_LE(cpus, 3200);
  // Paper: >60% of CPUs from non-dedicated facilities.
  EXPECT_LT(static_cast<double>(dedicated_cpus), 0.4 * cpus);
  EXPECT_TRUE(has_condor && has_pbs && has_lsf);
}

TEST(Roster, CpuScaleShrinksSites) {
  const auto small = grid3_roster(0.1);
  const auto full = grid3_roster(1.0);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_LE(small[i].cpus, full[i].cpus);
    EXPECT_GE(small[i].cpus, 2);
  }
}

TEST(Roster, ApplicationSiteCountsMatchTable1) {
  const auto roster = grid3_roster();
  EXPECT_EQ(application_sites(app::kAtlasGce, roster).size(), 18u);
  EXPECT_EQ(application_sites(app::kCmsMop, roster).size(), 18u);
  EXPECT_EQ(application_sites(app::kSdssCoadd, roster).size(), 13u);
  EXPECT_EQ(application_sites(app::kLigoPulsar, roster).size(), 1u);
  EXPECT_EQ(application_sites(app::kBtevSim, roster).size(), 8u);
  EXPECT_EQ(application_sites(app::kExerciser, roster).size(), 14u);
  EXPECT_TRUE(application_sites("unknown-app", roster).empty());
  // Owner-VO sites come first.
  EXPECT_EQ(application_sites(app::kLigoPulsar, roster)[0], "UWM_LIGO");
}

class FabricTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  Grid3 grid{sim, 42};
};

TEST_F(FabricTest, AddVoWiresServices) {
  grid.add_vo("usatlas");
  EXPECT_NE(grid.voms("usatlas"), nullptr);
  EXPECT_NE(grid.rls("usatlas"), nullptr);
  EXPECT_NE(grid.vo_giis("usatlas"), nullptr);
  EXPECT_EQ(grid.voms("ghost"), nullptr);
}

TEST_F(FabricTest, AddUserIssuesCertAndMembership) {
  const auto cert = grid.add_user("uscms", "bob", vo::Role::kAppAdmin);
  EXPECT_TRUE(grid.ca().verify(cert, sim.now()));
  EXPECT_TRUE(grid.voms("uscms")->is_member(cert.subject_dn));
  const auto proxy = grid.make_proxy(cert, "uscms");
  ASSERT_TRUE(proxy.has_value());
  EXPECT_EQ(proxy->role, vo::Role::kAppAdmin);
  EXPECT_EQ(grid.total_users(), 1u);
}

TEST_F(FabricTest, AddSiteInstallsAndRegisters) {
  grid.add_vo("usatlas");
  SiteConfig cfg;
  cfg.name = "TESTSITE";
  cfg.owner_vo = "usatlas";
  cfg.cpus = 16;
  Site& site = grid.add_site(cfg, /*reliability=*/1000.0);
  EXPECT_TRUE(site.installed());
  // GRIS reachable through the hierarchy.
  const auto snap = grid.igoc().top_giis().lookup("TESTSITE", sim.now());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->get_int(mds::glue::kTotalCpus), 16);
  // Grid-map knows the VO's users after refresh.
  const auto cert = grid.add_user("usatlas", "alice");
  std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
  site.refresh_gridmap(servers);
  EXPECT_TRUE(site.gridmap().map(cert.subject_dn).has_value());
  // SiteServices resolution.
  EXPECT_EQ(grid.gatekeeper("TESTSITE"), &site.gatekeeper());
  EXPECT_EQ(grid.ftp("TESTSITE"), &site.ftp());
  EXPECT_EQ(grid.volume("TESTSITE"), &site.disk());
  EXPECT_EQ(grid.gatekeeper("GHOST"), nullptr);
}

TEST_F(FabricTest, ExternalHostResolvesForTransfers) {
  auto& cern = grid.add_external_host("CERN");
  EXPECT_EQ(grid.ftp("CERN"), cern.ftp.get());
  EXPECT_NE(grid.volume("CERN"), nullptr);
}

TEST_F(FabricTest, SitePublishesDynamicStateOnMonitorLoop) {
  grid.add_vo("usatlas");
  SiteConfig cfg;
  cfg.name = "S";
  cfg.owner_vo = "usatlas";
  cfg.cpus = 4;
  cfg.policy.dedicated = true;
  Site& site = grid.add_site(cfg, 1000.0);
  sim.run_until(Time::minutes(12));
  // Ganglia heartbeats flowed to the bus.
  EXPECT_TRUE(grid.igoc()
                  .bus()
                  .latest("S", monitoring::gmetric::kHeartbeat)
                  .has_value());
  // Free CPUs published in GRIS.
  const auto snap = grid.igoc().top_giis().lookup("S", sim.now());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->get_int(mds::glue::kFreeCpus), 4);
  (void)site;
}

TEST_F(FabricTest, SharedSiteCarriesLocalLoad) {
  grid.add_vo("ivdgl");
  SiteConfig cfg;
  cfg.name = "SHARED";
  cfg.owner_vo = "ivdgl";
  cfg.cpus = 40;
  cfg.policy.dedicated = false;
  cfg.policy.local_load = 0.5;
  Site& site = grid.add_site(cfg, 1000.0);
  sim.run_until(Time::hours(4));
  // Around half the slots busy with local users.
  EXPECT_GT(site.scheduler().busy_slots(), 10);
  EXPECT_EQ(site.grid_jobs_running(), 0);
}

TEST_F(FabricTest, SiteCatalogSweepTracksOutages) {
  grid.add_vo("usatlas");
  SiteConfig cfg;
  cfg.name = "S";
  cfg.owner_vo = "usatlas";
  cfg.cpus = 4;
  Site& site = grid.add_site(cfg, 1000.0);
  grid.start_operations();
  sim.run_until(Time::hours(1));
  EXPECT_EQ(grid.igoc().site_catalog().status("S"),
            monitoring::SiteStatus::kPass);
  site.gatekeeper().set_available(false);
  sim.run_until(Time::hours(2));
  EXPECT_EQ(grid.igoc().site_catalog().status("S"),
            monitoring::SiteStatus::kDegraded);
}

TEST(FailureInjection, IncidentsOpenAndCloseTickets) {
  sim::Simulation sim;
  Grid3 grid{sim, 7};
  grid.add_vo("usatlas");
  SiteConfig cfg;
  cfg.name = "FLAKY";
  cfg.owner_vo = "usatlas";
  cfg.cpus = 8;
  // Very flaky: MTBFs scaled way down.
  FailureRates rates;
  rates.disk_fill_mtbf = Time::hours(12);
  rates.gatekeeper_crash_mtbf = Time::hours(12);
  rates.network_cut_mtbf = Time::hours(12);
  rates.service_crash_mtbf = Time::hours(12);
  Site& site = grid.add_site(cfg, 1000.0);  // default injector quiet
  grid.failures().attach(site, rates);      // re-attach replaces? no: adds
  sim.run_until(Time::days(14));
  EXPECT_GT(grid.failures().total_incidents(), 5u);
  EXPECT_GT(grid.igoc().tickets().total(), 5u);
  // Tickets eventually close (repairs happen).
  EXPECT_LT(grid.igoc().tickets().open_count(),
            grid.igoc().tickets().total());
}

TEST(FailureInjection, DetachedSiteStopsReceivingIncidents) {
  sim::Simulation sim;
  Grid3 grid{sim, 9};
  grid.add_vo("usatlas");
  SiteConfig cfg;
  cfg.name = "FLAKY";
  cfg.owner_vo = "usatlas";
  cfg.cpus = 8;
  FailureRates rates;
  rates.disk_fill_mtbf = Time::hours(6);
  rates.gatekeeper_crash_mtbf = Time::hours(6);
  rates.network_cut_mtbf = Time::hours(6);
  rates.service_crash_mtbf = Time::hours(6);
  Site& site = grid.add_site(cfg, 1000.0);
  grid.failures().attach(site, rates);
  sim.run_until(Time::days(7));
  const std::size_t before = grid.failures().total_incidents();
  ASSERT_GT(before, 0u);

  grid.failures().detach("FLAKY");
  sim.run_until(Time::days(30));
  EXPECT_EQ(grid.failures().total_incidents(), before);
}

TEST(FailureInjection, DetachLeavesOpenTicketsClosable) {
  sim::Simulation sim;
  Grid3 grid{sim, 10};
  grid.add_vo("usatlas");
  SiteConfig cfg;
  cfg.name = "FLAKY";
  cfg.owner_vo = "usatlas";
  cfg.cpus = 8;
  FailureRates rates;
  rates.disk_fill_mtbf = Time::hours(4);
  rates.gatekeeper_crash_mtbf = Time::hours(4);
  rates.network_cut_mtbf = Time::hours(4);
  rates.service_crash_mtbf = Time::hours(4);
  Site& site = grid.add_site(cfg, 1000.0);
  grid.failures().attach(site, rates);
  // Run until at least one incident has a ticket open, then detach
  // mid-repair: the already-scheduled repair must still close it.
  while (grid.igoc().tickets().open_count() == 0 &&
         sim.now() < Time::days(10)) {
    sim.run_until(sim.now() + Time::hours(1));
  }
  ASSERT_GT(grid.igoc().tickets().open_count(), 0u);
  grid.failures().detach("FLAKY");
  sim.run_until(sim.now() + Time::days(3));
  EXPECT_EQ(grid.igoc().tickets().open_count(), 0u);
}

TEST(FailureInjection, RolloverKillsRunningJobs) {
  sim::Simulation sim;
  Grid3 grid{sim, 8};
  grid.add_vo("ivdgl");
  SiteConfig cfg;
  cfg.name = "ACDC";
  cfg.owner_vo = "ivdgl";
  cfg.cpus = 8;
  cfg.policy.dedicated = true;
  Site& site = grid.add_site(cfg, 1000.0, /*nightly_rollover=*/true);
  int killed = 0;
  for (int i = 0; i < 8; ++i) {
    batch::JobRequest req;
    req.vo = "ivdgl";
    req.actual_runtime = Time::days(10);
    req.requested_walltime = Time::days(11);
    site.scheduler().submit(req, [&](const batch::JobOutcome& o) {
      if (o.state == batch::JobState::kKilledNodeFailure) ++killed;
    });
  }
  sim.run_until(Time::days(2));
  EXPECT_GT(killed, 0);
}

TEST(CollectiveFailures, OutagesOpenTicketsAndRepairsCloseThem) {
  sim::Simulation sim;
  Grid3 grid{sim, 11};
  grid.add_vo("usatlas");
  CollectiveFailureRates rates;
  rates.giis_outage_mtbf = Time::hours(12);
  rates.giis_repair_mean = Time::hours(1);
  rates.rls_outage_mtbf = Time::hours(12);
  rates.rls_repair_mean = Time::hours(1);
  grid.arm_vo_collective_failures("usatlas", rates);
  sim.run_until(Time::days(14));
  EXPECT_GT(grid.failures().incidents(Incident::kGiisOutage), 0u);
  EXPECT_GT(grid.failures().incidents(Incident::kRlsOutage), 0u);
  EXPECT_GT(grid.igoc().tickets().total(), 0u);
  // Repairs close the tickets (at most the currently-open outages stay).
  EXPECT_LT(grid.igoc().tickets().open_count(), 3u);
}

TEST(CollectiveFailures, ZeroRatesDrawNothing) {
  // Arming with all-zero MTBFs is inert: no incidents, no RNG draws, so
  // existing seeds stay byte-identical.
  sim::Simulation sim;
  Grid3 grid{sim, 12};
  grid.add_vo("usatlas");
  grid.arm_vo_collective_failures("usatlas", {});
  grid.arm_igoc_collective_failures({});
  sim.run_until(Time::days(30));
  EXPECT_EQ(grid.failures().total_incidents(), 0u);
  EXPECT_EQ(grid.igoc().tickets().total(), 0u);
}

TEST(CollectiveFailures, ScheduledRlsDowntimeJournalsAndReplays) {
  sim::Simulation sim;
  Grid3 grid{sim, 13};
  grid.add_vo("usatlas");
  grid.arm_vo_collective_failures("usatlas", {});  // attach, no Poisson
  grid.failures().schedule_downtime(
      {"usatlas-collective", Time::hours(1), Time::hours(2)});
  rls::ReplicaLocationService* rls = grid.rls("usatlas");

  sim.run_until(Time::hours(1) + Time::minutes(30));  // inside the window
  EXPECT_FALSE(rls->available());
  EXPECT_FALSE(rls->rli().available());
  EXPECT_EQ(grid.failures().incidents(Incident::kScheduledDowntime), 1u);
  EXPECT_EQ(grid.igoc().tickets().open_count(), 1u);
  rls->register_replica("BNL", "aod",
                        {"gsiftp://BNL/aod", Bytes::gb(1), sim.now()},
                        sim.now());
  EXPECT_EQ(rls->journal().pending(), 1u);

  // Just past the window (inside the RLI's 30-min soft-state TTL; no
  // ops refresh loop runs in this test to keep the entry alive).
  sim.run_until(Time::hours(3) + Time::minutes(5));
  EXPECT_TRUE(rls->available());
  // The restore replayed the journal; the maintenance ticket is closed.
  EXPECT_EQ(rls->journal().pending(), 0u);
  EXPECT_EQ(rls->journal().replayed(), 1u);
  EXPECT_EQ(rls->locate("aod", sim.now()).size(), 1u);
  EXPECT_EQ(grid.igoc().tickets().open_count(), 0u);
}

TEST(CollectiveFailures, ScheduledSiteDowntimeFiresAndRestores) {
  sim::Simulation sim;
  Grid3 grid{sim, 14};
  grid.add_vo("usatlas");
  SiteConfig cfg;
  cfg.name = "MAINT";
  cfg.owner_vo = "usatlas";
  cfg.cpus = 8;
  Site& site = grid.add_site(cfg, 1000.0);
  grid.failures().schedule_downtime(
      {"MAINT", Time::hours(2), Time::hours(3)});
  // An unknown target never fires an incident.
  grid.failures().schedule_downtime(
      {"GHOST", Time::hours(2), Time::hours(3)});

  sim.run_until(Time::hours(3));
  EXPECT_FALSE(site.gatekeeper().available());
  EXPECT_FALSE(site.gris().available());
  EXPECT_EQ(grid.failures().incidents(Incident::kScheduledDowntime), 1u);
  sim.run_until(Time::hours(6));
  EXPECT_TRUE(site.gatekeeper().available());
  EXPECT_TRUE(site.gris().available());
  EXPECT_EQ(grid.igoc().tickets().open_count(), 0u);
}

TEST(CollectiveFailures, TicketQueueDowntimeDropsOpens) {
  sim::Simulation sim;
  Grid3 grid{sim, 15};
  grid.add_vo("usatlas");
  grid.arm_igoc_collective_failures({});
  grid.failures().schedule_downtime(
      {"igoc-collective", Time::hours(1), Time::hours(1)});
  sim.run_until(Time::hours(1) + Time::minutes(30));
  // The queue is down -- even the maintenance ticket for this very
  // window was dropped (nobody tickets the ticket system).
  EXPECT_FALSE(grid.igoc().tickets().available());
  EXPECT_GE(grid.igoc().tickets().dropped(), 1u);
  EXPECT_EQ(grid.igoc().tickets().open("BNL", "disk", sim.now()), 0u);
  EXPECT_EQ(grid.igoc().tickets().total(), 0u);
  // MonALISA drops updates while down and answers nothing.
  EXPECT_FALSE(grid.igoc().ml_repository().available());
  EXPECT_EQ(grid.igoc().ml_repository().grid_total("cpu", sim.now()), 0.0);
  sim.run_until(Time::hours(3));
  EXPECT_TRUE(grid.igoc().tickets().available());
  EXPECT_TRUE(grid.igoc().ml_repository().available());
  EXPECT_GT(grid.igoc().tickets().open("BNL", "disk", sim.now()), 0u);
}

TEST(Milestones, ScorecardReflectsComputedValues) {
  Milestones m;
  m.cpus_now = 2700;
  m.users = 102;
  m.applications = 10;
  m.multi_vo_sites = 17;
  m.data_tb_per_day = 3.5;
  m.utilization = 0.45;
  m.peak_concurrent_jobs = 1300;
  m.efficiency_by_vo = {{"usatlas", 0.7}, {"uscms", 0.72}};
  m.ops_ftes = 1.5;
  const auto card = m.scorecard();
  ASSERT_EQ(card.size(), 9u);
  for (const auto& row : card) {
    EXPECT_TRUE(row.met) << row.name << " measured " << row.measured;
  }
}

TEST(Milestones, UnmetTargetsFlagged) {
  Milestones m;  // all zero
  const auto card = m.scorecard();
  int unmet = 0;
  for (const auto& row : card) {
    if (!row.met) ++unmet;
  }
  EXPECT_GT(unmet, 4);
}

}  // namespace
}  // namespace grid3::core
