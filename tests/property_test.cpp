// Property-style parameterized suites: invariants that must hold across
// parameter sweeps (scheduler types, network fan-in, RNG seeds, archive
// configurations).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "batch/scheduler.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/rrd.h"
#include "util/timeseries.h"

namespace grid3 {
namespace {

// ---------------------------------------------------------------------
// Property: every scheduler conserves jobs -- each submission reaches
// exactly one terminal state, and CPU charged never exceeds slot-time.
// ---------------------------------------------------------------------
enum class Lrms { kCondor, kPbs, kLsf };

struct SchedulerCase {
  Lrms lrms;
  int slots;
  int jobs;
  std::uint64_t seed;
};

class SchedulerConservation
    : public ::testing::TestWithParam<SchedulerCase> {};

std::unique_ptr<batch::BatchScheduler> make(sim::Simulation& sim,
                                            const SchedulerCase& c) {
  batch::SchedulerConfig cfg;
  cfg.site_name = "P";
  cfg.slots = c.slots;
  cfg.max_walltime = Time::hours(50);
  switch (c.lrms) {
    case Lrms::kCondor:
      return std::make_unique<batch::CondorScheduler>(sim, cfg);
    case Lrms::kPbs:
      return std::make_unique<batch::PbsScheduler>(sim, cfg);
    case Lrms::kLsf:
      return std::make_unique<batch::LsfScheduler>(sim, cfg);
  }
  return nullptr;
}

TEST_P(SchedulerConservation, EveryJobTerminatesExactlyOnce) {
  const auto c = GetParam();
  sim::Simulation sim;
  auto sched = make(sim, c);
  util::Rng rng{c.seed};

  int terminal = 0;
  double cpu_hours = 0.0;
  const Time horizon = Time::days(30);
  for (int i = 0; i < c.jobs; ++i) {
    batch::JobRequest req;
    req.vo = "vo" + std::to_string(i % 3);
    const double runtime = rng.uniform(0.1, 20.0);
    req.actual_runtime = Time::hours(runtime);
    req.requested_walltime = Time::hours(rng.uniform(runtime, 40.0));
    req.priority = rng.chance(0.1) ? -1 : 0;
    const Time submit_at = Time::hours(rng.uniform(0.0, 100.0));
    sim.schedule_at(submit_at, [&, req] {
      sched->submit(req, [&](const batch::JobOutcome& o) {
        ++terminal;
        cpu_hours += o.cpu_used().to_hours();
      });
    });
  }
  sim.run_until(horizon);
  sim.run();  // drain
  EXPECT_EQ(terminal, c.jobs);
  // CPU charged cannot exceed slots * makespan.
  EXPECT_LE(cpu_hours, c.slots * sim.now().to_hours() + 1e-6);
  EXPECT_EQ(sched->busy_slots(), 0);
  EXPECT_EQ(sched->queued_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerConservation,
    ::testing::Values(
        SchedulerCase{Lrms::kCondor, 4, 50, 1},
        SchedulerCase{Lrms::kCondor, 16, 200, 2},
        SchedulerCase{Lrms::kPbs, 4, 50, 3},
        SchedulerCase{Lrms::kPbs, 16, 200, 4},
        SchedulerCase{Lrms::kLsf, 4, 50, 5},
        SchedulerCase{Lrms::kLsf, 16, 200, 6},
        SchedulerCase{Lrms::kCondor, 1, 30, 7},
        SchedulerCase{Lrms::kPbs, 1, 30, 8},
        SchedulerCase{Lrms::kLsf, 1, 30, 9}));

// ---------------------------------------------------------------------
// Property: network byte conservation -- completed flows deliver exactly
// the requested bytes regardless of fan-in/fan-out shape.
// ---------------------------------------------------------------------
struct NetCase {
  int sources;
  int flows_per_source;
  double sink_mbps;
  std::uint64_t seed;
};

class NetworkConservation : public ::testing::TestWithParam<NetCase> {};

TEST_P(NetworkConservation, BytesDeliveredMatchRequested) {
  const auto c = GetParam();
  sim::Simulation sim;
  net::Network net{sim};
  const auto sink = net.add_node({"sink", Bandwidth::mbps(c.sink_mbps),
                                  Bandwidth::mbps(c.sink_mbps), true});
  util::Rng rng{c.seed};
  std::int64_t requested = 0;
  std::int64_t delivered = 0;
  int completions = 0;
  for (int s = 0; s < c.sources; ++s) {
    const auto src = net.add_node({"s" + std::to_string(s),
                                   Bandwidth::mbps(100),
                                   Bandwidth::mbps(100), true});
    for (int f = 0; f < c.flows_per_source; ++f) {
      const Bytes size = Bytes::mb(rng.uniform(1.0, 50.0));
      requested += size.count();
      sim.schedule_at(Time::seconds(rng.uniform(0.0, 30.0)), [&, src, size] {
        net.start_flow(src, sink, size, [&](const net::FlowResult& r) {
          if (r.ok()) {
            ++completions;
            delivered += r.transferred.count();
          }
        });
      });
    }
  }
  sim.run();
  EXPECT_EQ(completions, c.sources * c.flows_per_source);
  EXPECT_EQ(delivered, requested);
  EXPECT_EQ(net.active_flows(), 0u);
  // Sink byte counter within rounding of the requested total.
  EXPECT_NEAR(static_cast<double>(net.bytes_received(sink).count()),
              static_cast<double>(requested),
              static_cast<double>(c.sources * c.flows_per_source) * 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    FanInShapes, NetworkConservation,
    ::testing::Values(NetCase{1, 5, 100, 11}, NetCase{4, 5, 100, 12},
                      NetCase{8, 3, 50, 13}, NetCase{16, 2, 622, 14},
                      NetCase{2, 20, 10, 15}));

// ---------------------------------------------------------------------
// Property: RRD consolidated averages match the exact series average for
// aligned windows, at every level, for any seed.
// ---------------------------------------------------------------------
class RrdConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RrdConsistency, ConsolidatedAverageTracksExactSeries) {
  util::Rng rng{GetParam()};
  util::RoundRobinArchive rra{
      {{Time::minutes(5), 1000}, {Time::hours(1), 1000}},
      util::Consolidation::kAverage};
  // Regular 1-minute samples over 6 hours.
  std::vector<double> values;
  for (int i = 0; i < 360; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    values.push_back(v);
    rra.update(Time::minutes(i), v);
  }
  rra.update(Time::minutes(360), 0.0);  // flush the pending slot
  // Each 5-minute slot equals the average of its 5 samples.
  for (int slot = 0; slot < 71; ++slot) {
    const auto got = rra.read(Time::minutes(slot * 5 + 2));
    ASSERT_TRUE(got.has_value()) << slot;
    double expect = 0.0;
    for (int k = 0; k < 5; ++k) {
      expect += values[static_cast<std::size_t>(slot * 5 + k)];
    }
    expect /= 5.0;
    EXPECT_NEAR(*got, expect, 1e-9) << slot;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RrdConsistency,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

// ---------------------------------------------------------------------
// Property: time-series integration is additive over adjacent windows.
// ---------------------------------------------------------------------
class SeriesAdditivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeriesAdditivity, IntegralSplitsAcrossWindows) {
  util::Rng rng{GetParam()};
  util::TimeSeries ts;
  Time t;
  for (int i = 0; i < 200; ++i) {
    t += Time::seconds(rng.uniform(1.0, 100.0));
    ts.append(t, rng.uniform(0.0, 50.0));
  }
  const Time lo = Time::seconds(100);
  const Time hi = t;
  const Time mid = Time::seconds((lo.to_seconds() + hi.to_seconds()) / 2);
  const double whole = ts.integrate(lo, hi);
  const double parts = ts.integrate(lo, mid) + ts.integrate(mid, hi);
  EXPECT_NEAR(whole, parts, 1e-6 * std::max(1.0, whole));
  // Average of binned averages weighted equally = window average.
  const auto bins = ts.binned_average(lo, hi, 8);
  const double avg =
      std::accumulate(bins.begin(), bins.end(), 0.0) / 8.0;
  EXPECT_NEAR(avg, ts.time_average(lo, hi), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeriesAdditivity,
                         ::testing::Values(31u, 32u, 33u, 34u));

}  // namespace
}  // namespace grid3
