// Integration tests: a scaled-down Grid2003 scenario run end to end,
// checking the cross-module invariants the paper's evaluation relies on.
#include <gtest/gtest.h>

#include "apps/scenario.h"
#include "core/metrics.h"
#include "util/calendar.h"

namespace grid3::apps {
namespace {

/// One shared scenario run for all integration assertions (building and
/// running it is the expensive part).
class ScenarioTest : public ::testing::Test {
 protected:
  static sim::Simulation* sim;
  static Scenario* scenario;

  static void SetUpTestSuite() {
    sim = new sim::Simulation();
    ScenarioOptions opts;
    opts.cpu_scale = 0.12;  // ~330 CPUs
    opts.job_scale = 0.05;  // ~15k accounting records
    opts.months = 3;        // Oct-Dec 2003 covers SC2003
    scenario = new Scenario(*sim, opts);
    scenario->run();
  }

  static void TearDownTestSuite() {
    delete scenario;
    scenario = nullptr;
    delete sim;
    sim = nullptr;
  }
};

sim::Simulation* ScenarioTest::sim = nullptr;
Scenario* ScenarioTest::scenario = nullptr;

TEST_F(ScenarioTest, AllVoClassesProducedJobs) {
  const auto& db = scenario->grid().igoc().job_db();
  const auto vos = db.vos();
  // Six classes expected to appear at this scale (LIGO's 3-job schedule
  // may round to zero under job_scale, so it is optional).
  for (const char* vo : {"usatlas", "uscms", "sdss", "btev", "ivdgl",
                         "exerciser"}) {
    const auto stats = db.stats_for(vo, Time::zero(), sim->now());
    EXPECT_GT(stats.jobs, 0u) << vo;
  }
}

TEST_F(ScenarioTest, RuntimeShapesMatchTable1Ordering) {
  const auto& db = scenario->grid().igoc().job_db();
  const auto w = table1_window();
  const auto cms = db.stats_for("uscms", w.from, w.to);
  const auto atlas = db.stats_for("usatlas", w.from, w.to);
  const auto ivdgl = db.stats_for("ivdgl", w.from, w.to);
  const auto ex = db.stats_for("exerciser", w.from, w.to);
  // Table 1 ordering: CMS runtimes dwarf ATLAS, which dwarf iVDGL,
  // which dwarf the exerciser probes.
  EXPECT_GT(cms.avg_runtime_hours, atlas.avg_runtime_hours);
  EXPECT_GT(atlas.avg_runtime_hours, ivdgl.avg_runtime_hours);
  EXPECT_GT(ivdgl.avg_runtime_hours, ex.avg_runtime_hours);
  // CMS dominates total CPU consumption despite fewer jobs than iVDGL.
  EXPECT_GT(cms.total_cpu_days, ivdgl.total_cpu_days);
  EXPECT_GT(ivdgl.jobs, cms.jobs);
}

TEST_F(ScenarioTest, PeakProductionLandsInSc2003Months) {
  const auto& db = scenario->grid().igoc().job_db();
  const auto w = table1_window();
  const auto ivdgl = db.stats_for("ivdgl", w.from, w.to);
  EXPECT_EQ(ivdgl.peak_month, "11-2003");
  const auto btev = db.stats_for("btev", w.from, w.to);
  EXPECT_EQ(btev.peak_month, "11-2003");
}

TEST_F(ScenarioTest, FavoriteResourceConcentration) {
  const auto& db = scenario->grid().igoc().job_db();
  const auto w = table1_window();
  const auto ivdgl = db.stats_for("ivdgl", w.from, w.to);
  // Table 1: 88.1% of iVDGL peak production from one resource; the shape
  // (heavy concentration) must reproduce.
  EXPECT_GT(ivdgl.max_single_resource_percent, 50.0);
  const auto atlas = db.stats_for("usatlas", w.from, w.to);
  // ATLAS spreads much more evenly (28.2% in the paper).
  EXPECT_LT(atlas.max_single_resource_percent,
            ivdgl.max_single_resource_percent);
}

TEST_F(ScenarioTest, FailuresAreMostlySiteProblems) {
  const auto& db = scenario->grid().igoc().job_db();
  const auto f = db.failures("usatlas", Time::zero(), sim->now());
  if (f.failed > 10) {
    // Section 6.1: ~90% of failures were site problems.
    EXPECT_GT(f.site_problem_share(), 0.5);
  }
  // Failure rate in a plausible band around the paper's ~30%.
  EXPECT_LT(f.failure_rate(), 0.6);
}

TEST_F(ScenarioTest, MonitoringPathsCrosscheck) {
  const auto viewer = scenario->viewer();
  const auto w = sc2003_window();
  // Redundant paths (MonALISA VO activity vs ACDC records) agree within
  // sampling tolerance when both are healthy.
  EXPECT_LT(viewer.crosscheck_divergence(w.from, w.to), 0.35);
  // Utilization sits in a sane range.
  const double util = viewer.utilization_from_ganglia(w.from, w.to);
  EXPECT_GT(util, 0.01);
  EXPECT_LT(util, 1.0);
}

TEST_F(ScenarioTest, DataFlowedAndDemoDominates) {
  const auto& db = scenario->grid().igoc().job_db();
  const auto w = sc2003_window();
  const auto by_vo = db.bytes_consumed_by_vo(w.from, w.to);
  Bytes total, demo;
  for (const auto& [vo, pair] : by_vo) {
    total += pair.first;
    demo += pair.second;
  }
  EXPECT_GT(total.to_tb(), 1.0);
  // Figure 5: the GridFTP demonstrator accounted for most transferred data.
  EXPECT_GT(demo / total, 0.5);
}

TEST_F(ScenarioTest, MilestoneScorecardComputes) {
  const auto w = sc2003_window();
  const auto m =
      core::compute_milestones(scenario->grid(), w.from, w.to);
  EXPECT_GT(m.cpus_now, 100);
  EXPECT_EQ(m.users, 102u);
  EXPECT_GE(m.applications, 6u);
  EXPECT_GT(m.peak_concurrent_jobs, 0.0);
  EXPECT_FALSE(m.scorecard().empty());
}

TEST_F(ScenarioTest, Figure6RampShape) {
  const auto jobs = scenario->viewer().jobs_by_month(3);
  // Ramp into SC2003: November >> October.
  EXPECT_GT(jobs[1], jobs[0]);
}

TEST_F(ScenarioTest, TroubleTicketsOpenedAndResolved) {
  const auto& tickets = scenario->grid().igoc().tickets();
  EXPECT_GT(tickets.total(), 0u);
  EXPECT_LT(tickets.open_count(), tickets.total());
}

TEST_F(ScenarioTest, SiteCatalogSawAllSites) {
  EXPECT_EQ(scenario->grid().igoc().site_catalog().site_count(), 27u);
}

TEST_F(ScenarioTest, DeterministicUnderSameSeed) {
  // A second, tiny scenario run twice gives identical accounting.
  auto run_once = [] {
    sim::Simulation s;
    ScenarioOptions opts;
    opts.cpu_scale = 0.05;
    opts.job_scale = 0.01;
    opts.months = 1;
    opts.seed = 777;
    Scenario sc{s, opts};
    sc.run();
    return sc.grid().igoc().job_db().size();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

}  // namespace
}  // namespace grid3::apps
