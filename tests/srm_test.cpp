// Unit tests for disk volumes and the storage resource manager.
#include <gtest/gtest.h>

#include "srm/disk.h"
#include "srm/srm.h"

namespace grid3::srm {
namespace {

TEST(DiskVolume, AllocateReleaseAccounting) {
  DiskVolume disk{"t:/data", Bytes::gb(10)};
  EXPECT_TRUE(disk.allocate(Bytes::gb(4)));
  EXPECT_EQ(disk.used(), Bytes::gb(4));
  EXPECT_EQ(disk.free(), Bytes::gb(6));
  EXPECT_FALSE(disk.allocate(Bytes::gb(7)));  // over capacity
  EXPECT_EQ(disk.used(), Bytes::gb(4));       // unchanged on failure
  disk.release(Bytes::gb(4));
  EXPECT_EQ(disk.used(), Bytes::zero());
  EXPECT_EQ(disk.allocations(), 1u);
  EXPECT_EQ(disk.failures(), 1u);
}

TEST(DiskVolume, ReleaseClampsAtZero) {
  DiskVolume disk{"t:/data", Bytes::gb(1)};
  disk.release(Bytes::gb(5));
  EXPECT_EQ(disk.used(), Bytes::zero());
}

TEST(DiskVolume, UnmanagedConsumptionFillsDisk) {
  DiskVolume disk{"t:/data", Bytes::gb(10)};
  disk.consume_unmanaged(Bytes::gb(9));
  EXPECT_DOUBLE_EQ(disk.fill_fraction(), 0.9);
  EXPECT_FALSE(disk.allocate(Bytes::gb(2)));
  disk.cleanup(Bytes::gb(9));
  EXPECT_TRUE(disk.allocate(Bytes::gb(2)));
}

class SrmTest : public ::testing::Test {
 protected:
  DiskVolume disk{"se:/pool", Bytes::gb(100)};
  StorageResourceManager srm{"test-se", disk};
};

TEST_F(SrmTest, ReservationClaimsSpaceUpFront) {
  const auto r = srm.reserve("uscms", Bytes::gb(60), SpaceType::kVolatile,
                             Time::zero());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(disk.used(), Bytes::gb(60));
  // Another reservation exceeding the remainder fails.
  EXPECT_FALSE(srm.reserve("usatlas", Bytes::gb(50), SpaceType::kVolatile,
                           Time::zero())
                   .has_value());
  EXPECT_TRUE(srm.release(*r));
  EXPECT_EQ(disk.used(), Bytes::zero());
}

TEST_F(SrmTest, PutRespectsReservationBound) {
  const auto r = srm.reserve("uscms", Bytes::gb(10), SpaceType::kVolatile,
                             Time::zero());
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(srm.put(*r, "f1", Bytes::gb(6), Time::zero()).has_value());
  EXPECT_FALSE(srm.put(*r, "f2", Bytes::gb(6), Time::zero()).has_value());
  EXPECT_TRUE(srm.put(*r, "f3", Bytes::gb(4), Time::zero()).has_value());
}

TEST_F(SrmTest, SweepReclaimsExpiredVolatileSpace) {
  const auto r = srm.reserve("sdss", Bytes::gb(20), SpaceType::kVolatile,
                             Time::zero(), Time::days(1));
  ASSERT_TRUE(r.has_value());
  // Pin expires quickly too.
  ASSERT_TRUE(
      srm.put(*r, "f", Bytes::gb(5), Time::zero(), Time::hours(1)).has_value());
  EXPECT_EQ(srm.sweep(Time::hours(12)), Bytes::zero());  // not yet expired
  const Bytes reclaimed = srm.sweep(Time::days(2));
  EXPECT_EQ(reclaimed, Bytes::gb(20));
  EXPECT_EQ(disk.used(), Bytes::zero());
  EXPECT_EQ(srm.live_reservations(), 0u);
}

TEST_F(SrmTest, LivePinBlocksReservationSweep) {
  const auto r = srm.reserve("sdss", Bytes::gb(20), SpaceType::kVolatile,
                             Time::zero(), Time::days(1));
  ASSERT_TRUE(r.has_value());
  const auto pin =
      srm.put(*r, "f", Bytes::gb(5), Time::zero(), Time::days(30));
  ASSERT_TRUE(pin.has_value());
  srm.sweep(Time::days(2));
  EXPECT_EQ(srm.live_reservations(), 1u);  // pinned file keeps it alive
  srm.unpin(*pin);
  srm.sweep(Time::days(2));
  EXPECT_EQ(srm.live_reservations(), 0u);
}

TEST_F(SrmTest, PermanentSpaceSurvivesSweeps) {
  const auto r = srm.reserve("usatlas", Bytes::gb(30), SpaceType::kPermanent,
                             Time::zero(), Time::days(1));
  ASSERT_TRUE(r.has_value());
  srm.sweep(Time::days(365));
  EXPECT_EQ(srm.live_reservations(), 1u);
  EXPECT_EQ(disk.used(), Bytes::gb(30));
}

TEST_F(SrmTest, ExtendPinPostponesExpiry) {
  const auto r = srm.reserve("ligo", Bytes::gb(10), SpaceType::kDurable,
                             Time::zero());
  const auto pin =
      srm.put(*r, "f", Bytes::gb(2), Time::zero(), Time::hours(1));
  ASSERT_TRUE(pin.has_value());
  EXPECT_TRUE(srm.extend_pin(*pin, Time::days(3)));
  srm.sweep(Time::days(1));
  EXPECT_EQ(srm.pinned_files(), 1u);
  EXPECT_FALSE(srm.extend_pin(999, Time::days(1)));
}

TEST_F(SrmTest, UnavailableServiceRefusesOperations) {
  srm.set_available(false);
  EXPECT_FALSE(srm.reserve("x", Bytes::gb(1), SpaceType::kVolatile,
                           Time::zero())
                   .has_value());
}

}  // namespace
}  // namespace grid3::srm
