// Unit tests for the MDS information service: GRIS, GIIS hierarchy,
// GLUE schema, cache staleness.
#include <gtest/gtest.h>

#include "mds/giis.h"
#include "mds/gris.h"
#include "mds/schema.h"

namespace grid3::mds {
namespace {

TEST(Schema, AttrValueRendering) {
  EXPECT_EQ(to_string(AttrValue{std::string{"x"}}), "x");
  EXPECT_EQ(to_string(AttrValue{std::int64_t{42}}), "42");
  EXPECT_EQ(to_string(AttrValue{true}), "true");
  EXPECT_EQ(to_string(AttrValue{false}), "false");
}

TEST(Schema, AppAttributeNaming) {
  EXPECT_EQ(app_attribute("gce-atlas"), "Grid3App-gce-atlas");
}

TEST(Gris, PublishQueryRetract) {
  Gris gris{"BNL"};
  gris.publish(glue::kTotalCpus, std::int64_t{360}, Time::zero());
  const auto attr = gris.query(glue::kTotalCpus);
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(std::get<std::int64_t>(attr->value), 360);
  EXPECT_TRUE(gris.retract(glue::kTotalCpus));
  EXPECT_FALSE(gris.query(glue::kTotalCpus).has_value());
  EXPECT_FALSE(gris.retract(glue::kTotalCpus));
}

TEST(Gris, UpdateOverwritesAndStampsTime) {
  Gris gris{"BNL"};
  gris.publish(glue::kFreeCpus, std::int64_t{10}, Time::seconds(1));
  gris.publish(glue::kFreeCpus, std::int64_t{5}, Time::seconds(2));
  const auto attr = gris.query(glue::kFreeCpus);
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(std::get<std::int64_t>(attr->value), 5);
  EXPECT_EQ(attr->updated, Time::seconds(2));
  EXPECT_EQ(gris.attribute_count(), 1u);
}

TEST(Gris, DownServerAnswersNothing) {
  Gris gris{"BNL"};
  gris.publish(glue::kSiteName, std::string{"BNL"}, Time::zero());
  gris.set_available(false);
  EXPECT_FALSE(gris.query(glue::kSiteName).has_value());
}

class GiisTest : public ::testing::Test {
 protected:
  Gris bnl{"BNL"};
  Gris fnal{"FNAL"};
  Giis vo_giis{"usatlas-giis", Time::minutes(10)};
  Giis top{"igoc", Time::minutes(10)};

  void SetUp() override {
    bnl.publish(glue::kTotalCpus, std::int64_t{360}, Time::zero());
    bnl.publish(app_attribute("gce-atlas"), std::string{"1.0"}, Time::zero());
    fnal.publish(glue::kTotalCpus, std::int64_t{400}, Time::zero());
    vo_giis.register_gris(&bnl);
    top.register_child(&vo_giis);
    top.register_gris(&fnal);
  }
};

TEST_F(GiisTest, HierarchicalSiteEnumeration) {
  const auto sites = top.sites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "BNL");
  EXPECT_EQ(sites[1], "FNAL");
}

TEST_F(GiisTest, LookupThroughChild) {
  const auto snap = top.lookup("BNL", Time::zero());
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(snap->fresh);
  EXPECT_EQ(snap->get_int(glue::kTotalCpus), 360);
}

TEST_F(GiisTest, FindFiltersBySnapshotPredicate) {
  const auto hits = top.find(
      [](const SiteSnapshot& s) {
        return s.get(app_attribute("gce-atlas")).has_value();
      },
      Time::zero());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].site, "BNL");
}

TEST_F(GiisTest, CacheServesStaleWithinGracePeriod) {
  // Prime the cache.
  ASSERT_TRUE(top.lookup("FNAL", Time::zero()).has_value());
  fnal.set_available(false);
  // Within TTL: cached snapshot, still marked fresh.
  auto snap = top.lookup("FNAL", Time::minutes(5));
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(snap->fresh);
  // Past TTL but within grace: stale snapshot served.
  snap = top.lookup("FNAL", Time::minutes(15));
  ASSERT_TRUE(snap.has_value());
  EXPECT_FALSE(snap->fresh);
  // Past grace: the site drops out.
  EXPECT_FALSE(top.lookup("FNAL", Time::minutes(25)).has_value());
}

TEST_F(GiisTest, CacheRefreshesAfterTtl) {
  ASSERT_TRUE(top.lookup("FNAL", Time::zero()).has_value());
  fnal.publish(glue::kTotalCpus, std::int64_t{500}, Time::minutes(1));
  // Within TTL the old value is served.
  EXPECT_EQ(top.lookup("FNAL", Time::minutes(5))->get_int(glue::kTotalCpus),
            400);
  // After TTL the refreshed value appears.
  EXPECT_EQ(top.lookup("FNAL", Time::minutes(11))->get_int(glue::kTotalCpus),
            500);
}

TEST_F(GiisTest, DownIndexAnswersNothing) {
  top.set_available(false);
  EXPECT_FALSE(top.lookup("BNL", Time::zero()).has_value());
  EXPECT_TRUE(top.find([](const SiteSnapshot&) { return true; }, Time::zero())
                  .empty());
}

TEST_F(GiisTest, GrisRecoveryRestoresTheDroppedSite) {
  // The degraded-mode contract end to end: stale (fresh=false) through
  // one grace TTL, gone after, and back -- fresh -- once the GRIS
  // answers again.  No re-registration step is needed; the cache
  // re-pulls on the next lookup.
  ASSERT_TRUE(top.lookup("FNAL", Time::zero()).has_value());
  fnal.set_available(false);
  const auto stale = top.lookup("FNAL", Time::minutes(15));
  ASSERT_TRUE(stale.has_value());
  EXPECT_FALSE(stale->fresh);
  EXPECT_FALSE(top.lookup("FNAL", Time::minutes(25)).has_value());
  fnal.set_available(true);
  fnal.publish(glue::kTotalCpus, std::int64_t{512}, Time::minutes(26));
  const auto back = top.lookup("FNAL", Time::minutes(30));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->fresh);
  EXPECT_EQ(back->get_int(glue::kTotalCpus), 512);
}

TEST_F(GiisTest, DownChildGiisHidesItsSitesImmediately) {
  // The snapshot cache lives where the GRIS is registered, so a VO
  // GIIS outage removes its sites from the top index at once -- no
  // per-site grace applies.  Riding this out is the broker's job (its
  // bounded stale-view freeze), not MDS's.  Recovery is also
  // immediate: the child answers from its own cache again.
  ASSERT_TRUE(top.lookup("BNL", Time::zero()).has_value());
  vo_giis.set_available(false);
  EXPECT_FALSE(top.lookup("BNL", Time::minutes(1)).has_value());
  vo_giis.set_available(true);
  const auto back = top.lookup("BNL", Time::minutes(2));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->fresh);
  EXPECT_EQ(back->get_int(glue::kTotalCpus), 360);
}

TEST_F(GiisTest, DeregisterRemovesSite) {
  top.deregister_gris("FNAL");
  EXPECT_FALSE(top.lookup("FNAL", Time::zero()).has_value());
  const auto sites = top.sites();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], "BNL");
}

TEST(SiteSnapshot, TypedGetters) {
  SiteSnapshot snap;
  snap.attrs.emplace("int", Attribute{std::int64_t{7}, Time::zero()});
  snap.attrs.emplace("dbl", Attribute{3.5, Time::zero()});
  snap.attrs.emplace("str", Attribute{std::string{"hi"}, Time::zero()});
  snap.attrs.emplace("flag", Attribute{true, Time::zero()});
  EXPECT_EQ(snap.get_int("int"), 7);
  EXPECT_EQ(snap.get_int("dbl"), 3);  // double narrows
  EXPECT_EQ(snap.get_string("str"), "hi");
  EXPECT_EQ(snap.get_bool("flag"), true);
  EXPECT_FALSE(snap.get_int("missing").has_value());
  EXPECT_FALSE(snap.get_bool("str").has_value());
}

}  // namespace
}  // namespace grid3::mds
