// Unit tests for the application drivers and launch scheduling.
#include <gtest/gtest.h>

#include "apps/atlas.h"
#include "apps/btev.h"
#include "apps/entrada.h"
#include "apps/exerciser.h"
#include "apps/launcher.h"
#include "apps/ligo.h"
#include "core/roster.h"
#include "util/calendar.h"

namespace grid3::apps {
namespace {

TEST(LaunchSchedule, RatesFollowMonthlyTargets) {
  LaunchSchedule s;
  s.monthly = {310, 600};  // Oct 2003 (31 d), Nov 2003 (30 d)
  EXPECT_NEAR(s.rate_per_day(Time::days(5)), 10.0, 1e-9);
  EXPECT_NEAR(s.rate_per_day(Time::days(40)), 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.rate_per_day(Time::days(100)), 0.0);  // past end
  EXPECT_DOUBLE_EQ(s.total(), 910.0);
  s.scale = 0.5;
  EXPECT_NEAR(s.rate_per_day(Time::days(5)), 5.0, 1e-9);
}

TEST(PoissonLauncher, LaunchCountTracksSchedule) {
  sim::Simulation sim;
  LaunchSchedule s;
  s.monthly = {620, 0, 300};  // busy, idle, busy
  int launches = 0;
  PoissonLauncher launcher{sim, s, [&] { ++launches; }, util::Rng{99}};
  launcher.start();
  sim.run_until(util::month_start(3));
  // Poisson with mean 920; allow generous tolerance.
  EXPECT_NEAR(static_cast<double>(launches), 920.0, 150.0);
  EXPECT_EQ(launcher.launches(), static_cast<std::uint64_t>(launches));
}

TEST(PoissonLauncher, IdleMonthProducesNothing) {
  sim::Simulation sim;
  LaunchSchedule s;
  s.monthly = {0, 0, 100};
  int launches_before_month2 = -1;
  int launches = 0;
  PoissonLauncher launcher{sim, s, [&] { ++launches; }, util::Rng{5}};
  launcher.start();
  sim.run_until(util::month_start(2));
  launches_before_month2 = launches;
  sim.run_until(util::month_start(3));
  EXPECT_EQ(launches_before_month2, 0);
  EXPECT_GT(launches, 50);
}

TEST(PoissonLauncher, StopCancelsFutureLaunches) {
  sim::Simulation sim;
  LaunchSchedule s;
  s.monthly = {3100};
  int launches = 0;
  PoissonLauncher launcher{sim, s, [&] { ++launches; }, util::Rng{7}};
  launcher.start();
  sim.run_until(Time::days(1));
  const int at_stop = launches;
  launcher.stop();
  sim.run_until(Time::days(20));
  EXPECT_EQ(launches, at_stop);
}

/// Small fabric fixture for app-level tests.
class AppTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  core::Grid3 grid{sim, 123};
  core::Assembled assembled;

  void SetUp() override {
    core::AssembleOptions opts;
    opts.cpu_scale = 0.1;  // small but complete fabric
    opts.min_reliability = 50.0;  // keep failure noise out of unit tests
    opts.max_reliability = 100.0;
    assembled = core::assemble_grid3(grid, opts);
    sim.run_until(Time::minutes(10));  // monitoring warm-up
  }

  void wire(AppBase& app, const std::string& vo) {
    for (const auto& vu : assembled.users) {
      if (vu.vo == vo) {
        app.set_users(vu.app_admins, vu.users);
        return;
      }
    }
    FAIL() << "no users for " << vo;
  }
};

TEST_F(AppTest, AtlasWorkflowProducesTwoJobRecords) {
  AtlasGce atlas{grid};
  wire(atlas, "usatlas");
  ASSERT_TRUE(atlas.launch_workflow());
  sim.run_until(sim.now() + Time::days(30));
  const auto& db = grid.igoc().job_db();
  std::size_t compute_records = 0;
  for (const auto& r : db.records()) {
    if (r.vo == "usatlas") ++compute_records;
  }
  EXPECT_GE(compute_records, 2u);
  EXPECT_EQ(atlas.stats().workflows, 1u);
  // Output datasets archived at BNL and registered.
  EXPECT_FALSE(
      grid.rls("usatlas")->locate("usatlas/dc2/1.esd", sim.now()).empty());
}

TEST_F(AppTest, LigoSearchStagesSftData) {
  LigoPulsar ligo{grid};
  wire(ligo, "ligo");
  ASSERT_TRUE(ligo.run_search(2));
  sim.run_until(sim.now() + Time::days(10));
  // SFT staging flowed through the LIGO archive endpoint.
  EXPECT_GT(assembled.ligo_hanford->ftp->bytes_out().to_gb(), 7.0);
  EXPECT_GE(ligo.stats().jobs_ok, 2u);
}

TEST_F(AppTest, BtevChallengeYieldsEvents) {
  BtevSim btev{grid};
  wire(btev, "btev");
  ASSERT_TRUE(btev.run_challenge(10, 2.0));
  sim.run_until(sim.now() + Time::days(10));
  // 10 jobs x 2 h at 1/15 events/s = 4800 events each.
  EXPECT_NEAR(btev.events_generated(), 4800.0, 1500.0);
}

TEST_F(AppTest, ExerciserRecordsUnderOwnClassification) {
  CondorExerciser ex{grid};
  wire(ex, "ivdgl");
  for (int i = 0; i < 20; ++i) ex.probe_next_site();
  sim.run_until(sim.now() + Time::days(2));
  const auto stats = grid.igoc().job_db().stats_for(
      "exerciser", Time::zero(), sim.now());
  EXPECT_GE(stats.jobs, 12u);  // most probes land (flaky jobmanagers eat
                               // some; there is no retry layer here)
  EXPECT_LT(stats.avg_runtime_hours, 2.0);
}

TEST_F(AppTest, EntradaMovesDataAndRecordsDemoTraffic) {
  EntradaDemo entrada{grid};
  wire(entrada, "ivdgl");
  for (int i = 0; i < 10; ++i) entrada.transfer_once();
  sim.run_until(sim.now() + Time::days(2));
  EXPECT_GT(entrada.moved().to_gb(), 50.0);
  const auto by_vo =
      grid.igoc().job_db().bytes_consumed_by_vo(Time::zero(), sim.now());
  ASSERT_TRUE(by_vo.contains("ivdgl"));
  EXPECT_GT(by_vo.at("ivdgl").second.to_gb(), 50.0);  // demo share
}

}  // namespace
}  // namespace grid3::apps
