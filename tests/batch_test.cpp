// Unit tests for the batch schedulers: slot engine, policies, walltime
// enforcement, VO shares, failure hooks.
#include <gtest/gtest.h>

#include <map>

#include "batch/scheduler.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace grid3::batch {
namespace {

JobRequest job(const std::string& vo, double runtime_h,
               double walltime_h = 0.0, int priority = 0) {
  JobRequest r;
  r.vo = vo;
  r.user_dn = "/CN=" + vo;
  r.actual_runtime = Time::hours(runtime_h);
  r.requested_walltime =
      Time::hours(walltime_h > 0 ? walltime_h : runtime_h + 1);
  r.priority = priority;
  return r;
}

SchedulerConfig config(int slots, double max_wall_h = 72.0) {
  SchedulerConfig cfg;
  cfg.site_name = "TEST";
  cfg.slots = slots;
  cfg.max_walltime = Time::hours(max_wall_h);
  return cfg;
}

TEST(SlotEngine, RunsUpToSlotsConcurrently) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(2)};
  for (int i = 0; i < 5; ++i) {
    sched.submit(job("a", 1.0), {});
  }
  EXPECT_EQ(sched.busy_slots(), 2);
  EXPECT_EQ(sched.queued_count(), 3u);
  sim.run();
  EXPECT_EQ(sched.busy_slots(), 0);
  EXPECT_EQ(sched.queued_count(), 0u);
}

TEST(SlotEngine, CompletionCallbackCarriesTimes) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(1)};
  JobOutcome out1, out2;
  sched.submit(job("a", 2.0), [&](const JobOutcome& o) { out1 = o; });
  sched.submit(job("a", 3.0), [&](const JobOutcome& o) { out2 = o; });
  sim.run();
  EXPECT_EQ(out1.state, JobState::kCompleted);
  EXPECT_EQ(out1.started, Time::zero());
  EXPECT_EQ(out1.finished, Time::hours(2));
  // Second job waited for the first slot.
  EXPECT_EQ(out2.started, Time::hours(2));
  EXPECT_EQ(out2.finished, Time::hours(5));
  EXPECT_EQ(out2.cpu_used(), Time::hours(3));
}

TEST(SlotEngine, CancelQueuedAndRunning) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(1)};
  JobOutcome out_run, out_q;
  const auto run = sched.submit(job("a", 5.0),
                                [&](const JobOutcome& o) { out_run = o; });
  const auto queued = sched.submit(job("a", 5.0),
                                   [&](const JobOutcome& o) { out_q = o; });
  EXPECT_TRUE(sched.cancel(queued.id));
  EXPECT_TRUE(sched.cancel(run.id));
  EXPECT_FALSE(sched.cancel(run.id));  // already gone
  sim.run();
  EXPECT_EQ(out_run.state, JobState::kKilledAdmin);
  EXPECT_EQ(out_q.state, JobState::kKilledAdmin);
}

TEST(SlotEngine, KillRunningFractionAndRedispatch) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(4)};
  std::map<JobState, int> outcomes;
  for (int i = 0; i < 8; ++i) {
    sched.submit(job("a", 10.0),
                 [&](const JobOutcome& o) { ++outcomes[o.state]; });
  }
  util::Rng rng{9};
  const auto killed = sched.kill_running(1.0, rng);
  EXPECT_EQ(killed, 4u);
  EXPECT_EQ(outcomes[JobState::kKilledNodeFailure], 4);
  // Queue refilled the slots.
  EXPECT_EQ(sched.busy_slots(), 4);
  sim.run();
  EXPECT_EQ(outcomes[JobState::kCompleted], 4);
}

TEST(SlotEngine, ResizeDownKillsExcess) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(4)};
  int node_failures = 0;
  for (int i = 0; i < 4; ++i) {
    sched.submit(job("a", 10.0), [&](const JobOutcome& o) {
      if (o.state == JobState::kKilledNodeFailure) ++node_failures;
    });
  }
  util::Rng rng{10};
  sched.resize(2, rng);
  EXPECT_EQ(sched.total_slots(), 2);
  EXPECT_EQ(sched.busy_slots(), 2);
  EXPECT_EQ(node_failures, 2);
}

TEST(SlotEngine, DrainStopsDispatchResumeRestarts) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(1)};
  sched.drain();
  sched.submit(job("a", 1.0), {});
  EXPECT_EQ(sched.busy_slots(), 0);
  EXPECT_EQ(sched.queued_count(), 1u);
  sched.resume();
  EXPECT_EQ(sched.busy_slots(), 1);
}

TEST(SlotEngine, UsageChargedPerVo) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(2)};
  sched.submit(job("atlas", 2.0), {});
  sched.submit(job("cms", 3.0), {});
  sim.run();
  EXPECT_EQ(sched.vo_usage("atlas"), Time::hours(2));
  EXPECT_EQ(sched.vo_usage("cms"), Time::hours(3));
  EXPECT_EQ(sched.vo_usage("ligo"), Time::zero());
}

TEST(Condor, DoesNotEnforceWalltime) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(1)};
  JobOutcome out;
  // Runs 10 h despite requesting 1 h.
  sched.submit(job("a", 10.0, 1.0), [&](const JobOutcome& o) { out = o; });
  sim.run();
  EXPECT_EQ(out.state, JobState::kCompleted);
  EXPECT_EQ(out.finished, Time::hours(10));
}

TEST(Condor, FairShareBalancesVos) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(1)};
  // VO "hog" floods the queue first, then "meek" submits one job.  With
  // fair-share, once hog accumulates usage, meek's job jumps ahead of
  // hog's remaining queue.
  std::vector<std::string> finish_order;
  for (int i = 0; i < 3; ++i) {
    sched.submit(job("hog", 2.0),
                 [&](const JobOutcome&) { finish_order.push_back("hog"); });
  }
  sched.submit(job("meek", 2.0),
               [&](const JobOutcome&) { finish_order.push_back("meek"); });
  sim.run();
  ASSERT_EQ(finish_order.size(), 4u);
  // meek must not be last; it overtakes queued hog work.
  EXPECT_NE(finish_order.back(), "meek");
}

TEST(Condor, BackfillOnlyRunsWhenQueueIdle) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(1)};
  std::vector<std::string> order;
  sched.submit(job("probe", 1.0, 2.0, -1),
               [&](const JobOutcome&) { order.push_back("probe"); });
  sched.submit(job("work", 1.0),
               [&](const JobOutcome&) { order.push_back("work"); });
  // The backfill probe was submitted first but the production job runs
  // first once a slot frees... the probe grabbed the idle slot at t=0,
  // so the production job waits one slot turn.
  sim.run();
  ASSERT_EQ(order.size(), 2u);
}

TEST(Condor, BackfillWaitsBehindProduction) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(1)};
  // Occupy the slot, then queue a probe and a production job.
  sched.submit(job("work", 1.0), {});
  std::vector<std::string> order;
  sched.submit(job("probe", 1.0, 2.0, -1),
               [&](const JobOutcome&) { order.push_back("probe"); });
  sched.submit(job("work2", 1.0),
               [&](const JobOutcome&) { order.push_back("work2"); });
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "work2");  // production outranks backfill
  EXPECT_EQ(order[1], "probe");
}

TEST(Pbs, EnforcesWalltimeKill) {
  sim::Simulation sim;
  PbsScheduler sched{sim, config(1)};
  JobOutcome out;
  sched.submit(job("a", 10.0, 2.0), [&](const JobOutcome& o) { out = o; });
  sim.run();
  EXPECT_EQ(out.state, JobState::kKilledWalltime);
  EXPECT_EQ(out.finished, Time::hours(2));
}

TEST(Pbs, RejectsOverLimitRequests) {
  sim::Simulation sim;
  PbsScheduler sched{sim, config(1, 24.0)};
  JobOutcome out;
  const auto res =
      sched.submit(job("a", 30.0, 48.0), [&](const JobOutcome& o) { out = o; });
  EXPECT_FALSE(res.accepted);
  EXPECT_EQ(out.state, JobState::kRejected);
}

TEST(Pbs, FifoWithinPriority) {
  sim::Simulation sim;
  PbsScheduler sched{sim, config(1)};
  sched.submit(job("x", 1.0), {});  // occupies slot
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sched.submit(job("x", 1.0),
                 [&order, i](const JobOutcome&) { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Pbs, HigherPriorityJumpsQueue) {
  sim::Simulation sim;
  PbsScheduler sched{sim, config(1)};
  sched.submit(job("x", 1.0), {});
  std::vector<std::string> order;
  sched.submit(job("low", 1.0, 2.0, 0),
               [&](const JobOutcome&) { order.push_back("low"); });
  sched.submit(job("high", 1.0, 2.0, 5),
               [&](const JobOutcome&) { order.push_back("high"); });
  sim.run();
  EXPECT_EQ(order[0], "high");
}

TEST(Pbs, ClosedSharesRejectForeignVo) {
  sim::Simulation sim;
  auto cfg = config(2);
  cfg.vo_shares = {{"usatlas", 1.0}};
  cfg.closed_shares = true;
  PbsScheduler sched{sim, cfg};
  JobOutcome out;
  const auto res =
      sched.submit(job("uscms", 1.0), [&](const JobOutcome& o) { out = o; });
  EXPECT_FALSE(res.accepted);
  EXPECT_EQ(out.state, JobState::kRejected);
  EXPECT_TRUE(sched.submit(job("usatlas", 1.0), {}).accepted);
}

TEST(Lsf, LongQueueCappedShortJobsFlow) {
  sim::Simulation sim;
  // 4 slots, long threshold 12 h, cap 0.5 -> at most 2 long jobs run.
  LsfScheduler sched{sim, config(4, 100.0), Time::hours(12), 0.5};
  for (int i = 0; i < 4; ++i) {
    sched.submit(job("a", 50.0, 60.0), {});
  }
  EXPECT_EQ(sched.busy_slots(), 2);  // cap holds 2 long jobs back
  sched.submit(job("a", 1.0, 2.0), {});
  EXPECT_EQ(sched.busy_slots(), 3);  // short job flows past the cap
}

TEST(Lsf, EnforcesWalltime) {
  sim::Simulation sim;
  LsfScheduler sched{sim, config(1)};
  JobOutcome out;
  sched.submit(job("a", 5.0, 1.0), [&](const JobOutcome& o) { out = o; });
  sim.run();
  EXPECT_EQ(out.state, JobState::kKilledWalltime);
}

TEST(LoadObserver, FiresOnStateChanges) {
  sim::Simulation sim;
  CondorScheduler sched{sim, config(1)};
  int calls = 0;
  sched.set_load_observer([&](int, int) { ++calls; });
  sched.submit(job("a", 1.0), {});
  sim.run();
  EXPECT_GT(calls, 0);
}

}  // namespace
}  // namespace grid3::batch
