// Unit tests for Pacman packaging: dependency resolution, install
// transactions, validation, certification.
#include <gtest/gtest.h>

#include "mds/gris.h"
#include "pacman/installer.h"
#include "pacman/package.h"
#include "pacman/vdt.h"

namespace grid3::pacman {
namespace {

Package make_pkg(std::string name, std::string version,
                 std::vector<std::string> deps = {}) {
  Package pkg;
  pkg.name = std::move(name);
  pkg.version = std::move(version);
  pkg.dependencies = std::move(deps);
  return pkg;
}

TEST(PackageCache, ResolveOrdersDependenciesFirst) {
  PackageCache cache;
  cache.add(make_pkg("a", "1", {"b", "c"}));
  cache.add(make_pkg("b", "1", {"c"}));
  cache.add(make_pkg("c", "1"));
  const auto order = cache.resolve("a");
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 3u);
  EXPECT_EQ((*order)[0]->name, "c");
  EXPECT_EQ((*order)[1]->name, "b");
  EXPECT_EQ((*order)[2]->name, "a");
}

TEST(PackageCache, SharedDependencyInstalledOnce) {
  PackageCache cache;
  cache.add(make_pkg("root", "1", {"x", "y"}));
  cache.add(make_pkg("x", "1", {"base"}));
  cache.add(make_pkg("y", "1", {"base"}));
  cache.add(make_pkg("base", "1"));
  const auto order = cache.resolve("root");
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), 4u);  // base appears exactly once
}

TEST(PackageCache, CycleDetected) {
  PackageCache cache;
  cache.add(make_pkg("a", "1", {"b"}));
  cache.add(make_pkg("b", "1", {"a"}));
  EXPECT_FALSE(cache.resolve("a").has_value());
}

TEST(PackageCache, MissingDependencyFails) {
  PackageCache cache;
  cache.add(make_pkg("a", "1", {"ghost"}));
  EXPECT_FALSE(cache.resolve("a").has_value());
  EXPECT_FALSE(cache.resolve("unknown").has_value());
}

TEST(PackageCache, AddReplacesByName) {
  PackageCache cache;
  cache.add(make_pkg("a", "1"));
  cache.add(make_pkg("a", "2"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find("a")->version, "2");
}

TEST(Vdt, BundleResolvesCompletely) {
  PackageCache cache;
  const std::string root = load_vdt_bundle(cache);
  EXPECT_EQ(root, "grid3-vdt");
  const auto order = cache.resolve(root);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), 8u);
  // GSI underpins everything Globus; it must come before GRAM.
  std::size_t gsi = 0, gram = 0;
  for (std::size_t i = 0; i < order->size(); ++i) {
    if ((*order)[i]->name == "globus-gsi") gsi = i;
    if ((*order)[i]->name == "globus-gram") gram = i;
  }
  EXPECT_LT(gsi, gram);
}

TEST(Vdt, ApplicationPackageDependsOnVdt) {
  PackageCache cache;
  load_vdt_bundle(cache);
  add_application_package(cache, "gce-atlas", Time::minutes(20));
  const auto order = cache.resolve("app-gce-atlas");
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->back()->name, "app-gce-atlas");
  EXPECT_EQ(order->size(), 9u);
}

TEST(Installer, CleanInstallSucceeds) {
  PackageCache cache;
  Package pkg = make_pkg("pkg", "1");
  pkg.install_cost = Time::minutes(5);
  pkg.misconfig_probability = 0.0;
  cache.add(std::move(pkg));
  SiteInstaller installer{cache};
  util::Rng rng{1};
  const auto report = installer.install("pkg", rng);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.installed.size(), 1u);
  EXPECT_TRUE(report.latent_defects.empty());
  EXPECT_EQ(report.elapsed, Time::minutes(5));
}

TEST(Installer, MisconfigurationCaughtByValidationIsReinstalled) {
  PackageCache cache;
  Package flaky = make_pkg("flaky", "1");
  flaky.checks = {{"always-catches", 1.0}};
  flaky.misconfig_probability = 0.5;
  cache.add(std::move(flaky));
  SiteInstaller installer{cache};
  util::Rng rng{2};
  int caught = 0;
  for (int i = 0; i < 50; ++i) {
    const auto report = installer.install("flaky", rng);
    // With a perfect check, no latent defect can survive.
    EXPECT_TRUE(report.latent_defects.empty());
    caught += static_cast<int>(report.caught_defects.size());
  }
  EXPECT_GT(caught, 0);
}

TEST(Installer, UncheckedMisconfigurationGoesLatent) {
  PackageCache cache;
  Package sloppy = make_pkg("sloppy", "1");
  sloppy.checks = {};  // no validation at all
  sloppy.misconfig_probability = 1.0;
  cache.add(std::move(sloppy));
  SiteInstaller installer{cache};
  util::Rng rng{3};
  const auto report = installer.install("sloppy", rng);
  EXPECT_TRUE(report.success);
  ASSERT_EQ(report.latent_defects.size(), 1u);
  EXPECT_EQ(report.latent_defects[0], "sloppy");
}

TEST(Installer, GivesUpAfterMaxReinstalls) {
  PackageCache cache;
  Package cursed = make_pkg("cursed", "1");
  cursed.checks = {{"always-catches", 1.0}};
  cursed.misconfig_probability = 1.0;
  cache.add(std::move(cursed));
  SiteInstaller installer{cache};
  util::Rng rng{4};
  InstallOptions opts;
  opts.max_reinstalls = 2;
  const auto report = installer.install("cursed", rng, opts);
  EXPECT_FALSE(report.success);
  EXPECT_EQ(report.failed_package, "cursed");
}

TEST(Installer, PublishWritesVdtAndAppAttributes) {
  InstallReport report;
  report.success = true;
  report.installed = {"globus-gram", "app-gce-atlas"};
  mds::Gris gris{"BNL"};
  SiteInstaller::publish(report, "1.1.12", gris, Time::zero());
  EXPECT_TRUE(gris.query(mds::grid3ext::kVdtVersion).has_value());
  EXPECT_TRUE(gris.query(mds::app_attribute("gce-atlas")).has_value());
}

TEST(Certification, CleanInstallCertifies) {
  InstallReport report;
  report.success = true;
  util::Rng rng{5};
  const auto cert = certify_site(report, rng);
  EXPECT_TRUE(cert.certified);
  EXPECT_EQ(cert.passed.size(), 5u);
}

TEST(Certification, FailedInstallNeverCertifies) {
  InstallReport report;
  report.success = false;
  util::Rng rng{6};
  const auto cert = certify_site(report, rng);
  EXPECT_FALSE(cert.certified);
}

TEST(Certification, LatentDefectsTripProbesSometimes) {
  InstallReport report;
  report.success = true;
  report.latent_defects = {"globus-gridftp", "globus-mds"};
  util::Rng rng{7};
  int failures = 0;
  for (int i = 0; i < 100; ++i) {
    if (!certify_site(report, rng).certified) ++failures;
  }
  EXPECT_GT(failures, 50);  // two latent defects usually trip something
}

}  // namespace
}  // namespace grid3::pacman
