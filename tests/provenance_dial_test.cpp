// Tests for Chimera provenance queries and the DIAL analysis layer.
#include <gtest/gtest.h>

#include "apps/atlas.h"
#include "apps/dial.h"
#include "core/roster.h"
#include "workflow/vdc.h"

namespace grid3 {
namespace {

using workflow::Derivation;
using workflow::VirtualDataCatalog;

Derivation derive(const std::string& id, std::vector<std::string> in,
                  std::vector<std::string> out) {
  Derivation d;
  d.id = id;
  d.transformation = "tf";
  d.inputs = std::move(in);
  d.outputs = std::move(out);
  d.runtime = Time::hours(1);
  d.output_size = Bytes::gb(1);
  return d;
}

TEST(Provenance, LineageIsRootFirstAndComplete) {
  VirtualDataCatalog vdc;
  vdc.add_derivation(derive("gen", {"pythia-card"}, {"raw"}));
  vdc.add_derivation(derive("sim", {"raw"}, {"hits"}));
  vdc.add_derivation(derive("rec", {"hits", "calib-db"}, {"esd"}));
  const auto prov = vdc.provenance_of("esd");
  ASSERT_EQ(prov.lineage.size(), 3u);
  EXPECT_EQ(prov.lineage.front()->id, "gen");
  EXPECT_EQ(prov.lineage.back()->id, "rec");
  // External inputs are named but not part of the lineage.
  ASSERT_EQ(prov.external_inputs.size(), 2u);
  EXPECT_EQ(prov.external_inputs[0], "calib-db");
  EXPECT_EQ(prov.external_inputs[1], "pythia-card");
}

TEST(Provenance, UnknownLfnYieldsEmptyLineage) {
  VirtualDataCatalog vdc;
  const auto prov = vdc.provenance_of("nothing");
  EXPECT_TRUE(prov.lineage.empty());
  EXPECT_TRUE(prov.external_inputs.empty());
}

TEST(Provenance, ConsumersFormInvalidationSet) {
  VirtualDataCatalog vdc;
  vdc.add_derivation(derive("sim", {"raw"}, {"hits"}));
  vdc.add_derivation(derive("rec", {"hits"}, {"esd"}));
  vdc.add_derivation(derive("aod", {"esd"}, {"aod"}));
  vdc.add_derivation(derive("other", {"unrelated"}, {"x"}));
  // If "raw" turns out bad, everything downstream must be re-derived.
  const auto consumers = vdc.consumers_of("raw");
  ASSERT_EQ(consumers.size(), 3u);
  EXPECT_EQ(consumers[0]->id, "sim");
  // "esd" invalidation only touches the analysis chain.
  EXPECT_EQ(vdc.consumers_of("esd").size(), 1u);
  EXPECT_TRUE(vdc.consumers_of("x").empty());
}

TEST(Provenance, DiamondLineageVisitsEachDerivationOnce) {
  VirtualDataCatalog vdc;
  vdc.add_derivation(derive("root", {}, {"a"}));
  vdc.add_derivation(derive("left", {"a"}, {"l"}));
  vdc.add_derivation(derive("right", {"a"}, {"r"}));
  vdc.add_derivation(derive("merge", {"l", "r"}, {"out"}));
  const auto prov = vdc.provenance_of("out");
  EXPECT_EQ(prov.lineage.size(), 4u);
  EXPECT_EQ(prov.lineage.front()->id, "root");
}

TEST(Dial, AnalyzesArchivedProductionDatasets) {
  sim::Simulation sim;
  core::Grid3 grid{sim, 7777};
  core::AssembleOptions opts;
  opts.cpu_scale = 0.1;
  opts.min_reliability = 100.0;
  opts.max_reliability = 200.0;
  auto assembled = core::assemble_grid3(grid, opts);

  // Produce a few ATLAS datasets first.
  apps::AtlasGce atlas{grid};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "usatlas") atlas.set_users(vu.app_admins, vu.users);
  }
  for (int i = 0; i < 6; ++i) atlas.launch_workflow();
  sim.run_until(sim.now() + Time::days(25));

  // Now analyze them interactively through DIAL.
  apps::DialAnalysis dial{grid};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "usatlas") dial.set_users(vu.app_admins, vu.users);
  }
  std::optional<apps::DialResult> result;
  dial.analyze(6, [&](apps::DialResult r) { result = std::move(r); });
  sim.run_until(sim.now() + Time::days(10));

  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->datasets_found, 0u);
  EXPECT_GT(result->jobs_ok, 0u);
  // The merged histogram carries the filled candidates.
  EXPECT_GT(result->histogram.total(), 0.0);
  // DIAL analysis jobs are accounted like any other grid job.
  bool saw_dial = false;
  for (const auto& r : grid.igoc().job_db().records()) {
    if (r.app == "dial") saw_dial = true;
  }
  EXPECT_TRUE(saw_dial);
}

TEST(Dial, NoDatasetsMeansEmptyCompleteResult) {
  sim::Simulation sim;
  core::Grid3 grid{sim, 7778};
  core::AssembleOptions opts;
  opts.cpu_scale = 0.05;
  auto assembled = core::assemble_grid3(grid, opts);
  apps::DialAnalysis dial{grid};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "usatlas") dial.set_users(vu.app_admins, vu.users);
  }
  std::optional<apps::DialResult> result;
  dial.analyze(5, [&](apps::DialResult r) { result = std::move(r); });
  sim.run_until(sim.now() + Time::days(1));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->datasets_found, 0u);
  EXPECT_EQ(result->jobs_launched, 0u);
}

}  // namespace
}  // namespace grid3
