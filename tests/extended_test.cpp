// Extended cross-cutting tests: behaviours that span modules and edge
// cases not covered by the per-module suites.
#include <gtest/gtest.h>

#include "apps/cms.h"
#include "apps/ligo.h"
#include "apps/sdss.h"
#include "apps/scenario.h"
#include "core/metrics.h"
#include "core/policy_audit.h"
#include "monitoring/mdviewer.h"
#include "monitoring/troubleshoot.h"
#include "pacman/vdt.h"
#include "util/calendar.h"

namespace grid3 {
namespace {

// ---------------------------------------------------------------------
// Gatekeeper load model: a parameterized sweep over the section 6.4
// coefficient (load scales linearly in managed jobs).
// ---------------------------------------------------------------------
class GatekeeperLoadSweep : public ::testing::TestWithParam<int> {};

TEST_P(GatekeeperLoadSweep, LoadScalesLinearlyInManagedJobs) {
  const int jobs = GetParam();
  sim::Simulation sim;
  net::Network net{sim};
  gridftp::GridFtpClient ftp_client{sim, net};
  vo::CertificateAuthority ca{"CA"};
  vo::VomsServer voms{"vo"};
  vo::GridMapFile gridmap;
  srm::DiskVolume scratch{"s", Bytes::tb(100)};
  const auto node = net.add_node({"S", Bandwidth::gbps(1),
                                  Bandwidth::gbps(1), true});
  gridftp::GridFtpServer ftp{"S", node};
  batch::SchedulerConfig cfg{.site_name = "S", .slots = 10000,
                             .max_walltime = Time::hours(2000)};
  batch::CondorScheduler lrms{sim, cfg};
  gram::GatekeeperConfig gkc{.site = "S", .overload_threshold = 1e9,
                             .submission_flake_rate = 0.0,
                             .app_error_rate = 0.0};
  gram::Gatekeeper gk{sim, gkc, lrms, gridmap, ca, ftp_client, ftp,
                      scratch};
  const auto cert = ca.issue("/CN=u", sim.now(), Time::days(999));
  voms.add_member("/CN=u", vo::Role::kUser);
  gridmap.support_vo("vo", {"vo1", "vo"});
  gridmap.regenerate({&voms}, sim.now());
  const auto proxy = *vo::issue_proxy(voms, cert, sim.now(), Time::days(30));

  for (int i = 0; i < jobs; ++i) {
    sim.schedule_at(Time::seconds(3600.0 * i / jobs), [&] {
      gram::GramJob job;
      job.proxy = proxy;
      job.request.vo = "vo";
      job.request.actual_runtime = Time::hours(1000);
      job.request.requested_walltime = Time::hours(1100);
      gk.submit(std::move(job), {});
    });
  }
  sim.run_until(Time::hours(1) + Time::minutes(2));
  EXPECT_EQ(gk.managed_jobs(), static_cast<std::size_t>(jobs));
  EXPECT_NEAR(gk.one_minute_load(), 0.225 * jobs, 0.01 * jobs + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Section64, GatekeeperLoadSweep,
                         ::testing::Values(100, 250, 500, 1000, 2000));

// ---------------------------------------------------------------------
// Launch schedules for every production app match Table 1 totals.
// ---------------------------------------------------------------------
struct ScheduleCase {
  const char* name;
  std::vector<double> monthly;
  double expected_total;
  double tolerance;
};

class ScheduleTotals : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleTotals, MonthlyProfileSumsToTable1) {
  const auto& c = GetParam();
  apps::LaunchSchedule s;
  s.monthly = c.monthly;
  EXPECT_NEAR(s.total(), c.expected_total, c.tolerance) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table1Profiles, ScheduleTotals,
    ::testing::Values(
        // jobs/workflow noted per app; schedules hold workflow counts.
        ScheduleCase{"atlas (x2 jobs/wf)",
                     {175, 1599, 550, 400, 350, 350, 300},
                     7455.0 / 2.0, 40.0},
        ScheduleCase{"cms (x2 jobs/wf)",
                     {600, 4417, 1750, 900, 750, 700, 550},
                     19354.0 / 2.0, 60.0},
        ScheduleCase{"btev", {50, 2377, 80, 40, 25, 15, 10}, 2598.0, 5.0},
        ScheduleCase{"ivdgl", {3000, 25722, 9000, 6000, 5500, 5000, 3900},
                     58145.0, 25.0},
        ScheduleCase{"exerciser",
                     {6000, 20000, 72224, 30000, 26000, 26000, 18000},
                     198272.0, 100.0}));

// ---------------------------------------------------------------------
// Small-fabric end-to-end behaviours.
// ---------------------------------------------------------------------
class ExtendedFixture : public ::testing::Test {
 protected:
  sim::Simulation sim;
  core::Grid3 grid{sim, 31337};
  core::Assembled assembled;

  void SetUp() override {
    core::AssembleOptions opts;
    opts.cpu_scale = 0.1;
    opts.min_reliability = 100.0;  // quiet failure injection
    opts.max_reliability = 200.0;
    assembled = core::assemble_grid3(grid, opts);
    sim.run_until(Time::minutes(10));
  }
};

TEST_F(ExtendedFixture, SdssChainsProduceTwentyFiveJobsPerWorkflow) {
  apps::SdssCoadd sdss{grid};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "sdss") sdss.set_users(vu.app_admins, vu.users);
  }
  sdss.register_survey_segments(2);
  ASSERT_TRUE(sdss.launch_workflow());
  sim.run_until(sim.now() + Time::days(30));
  std::size_t jobs = 0;
  for (const auto& r : grid.igoc().job_db().records()) {
    if (r.vo == "sdss") ++jobs;
  }
  // 25 compute nodes; retried attempts may add records.
  EXPECT_GE(jobs, 25u);
}

TEST_F(ExtendedFixture, CmsPileupIsStagedFromTier1) {
  apps::CmsMop cms{grid};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "uscms") cms.set_users(vu.app_admins, vu.users);
  }
  cms.register_pileup_dataset();
  // Individual workflows legitimately die to the production failure
  // model (walltime misestimates kill every retry); launch a batch and
  // expect at least half to archive.
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(cms.launch_workflow());
  sim.run_until(sim.now() + Time::days(30));
  EXPECT_GE(cms.stats().jobs_ok, 8u);
  int archived = 0;
  for (int i = 1; i <= 8; ++i) {
    if (!grid.rls("uscms")
             ->locate("uscms/dc04/" + std::to_string(i) + ".digi",
                      sim.now())
             .empty()) {
      ++archived;
    }
  }
  EXPECT_GE(archived, 4);
}

TEST_F(ExtendedFixture, LigoBlindSearchRoundTrip) {
  apps::LigoPulsar ligo{grid};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "ligo") ligo.set_users(vu.app_admins, vu.users);
  }
  ASSERT_TRUE(ligo.run_search(3));
  sim.run_until(sim.now() + Time::days(10));
  // Candidates staged back to the LIGO facility and registered.
  std::size_t candidates = 0;
  for (int i = 1; i <= 3; ++i) {
    if (!grid.rls("ligo")
             ->locate("ligo/s2/candidates-" + std::to_string(i + 3),
                      sim.now())
             .empty()) {
      ++candidates;
    }
  }
  // run_search allocates band ids after registration; just assert the
  // facility received data and jobs completed.
  EXPECT_GE(ligo.stats().jobs_ok, 2u);
  EXPECT_GT(assembled.ligo_hanford->ftp->bytes_out().to_gb(), 8.0);
  (void)candidates;
}

TEST_F(ExtendedFixture, JobRecordsCarryLinkableIds) {
  apps::SdssCoadd sdss{grid};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "sdss") sdss.set_users(vu.app_admins, vu.users);
  }
  sdss.register_survey_segments(1);
  ASSERT_TRUE(sdss.launch_workflow());
  sim.run_until(sim.now() + Time::days(20));
  monitoring::Troubleshooter ts{grid.igoc().job_db()};
  std::size_t linkable = 0;
  for (const auto& r : grid.igoc().job_db().records()) {
    if (r.vo != "sdss" || r.gram_contact.empty()) continue;
    const auto* linked = ts.find_by_gram_contact(r.gram_contact);
    ASSERT_NE(linked, nullptr);
    EXPECT_FALSE(linked->submit_id.empty());
    ++linkable;
  }
  EXPECT_GT(linkable, 0u);
}

TEST_F(ExtendedFixture, PolicyAuditRunsCleanOnHealthyFabric) {
  const auto report =
      core::PolicyAuditor{grid}.audit(Time::zero(), sim.now());
  EXPECT_EQ(report.sites_audited, 27u);
  EXPECT_EQ(report.count(core::AuditSeverity::kViolation), 0u);
}

TEST_F(ExtendedFixture, GmetadSeesWholeRoster) {
  const auto summary = grid.igoc().gmetad().summarize(sim.now());
  EXPECT_EQ(summary.sites_reporting, 27);
  EXPECT_GT(summary.cpus_total, 100);
}

TEST_F(ExtendedFixture, MonalisaRepositoryArchivesGatekeeperLoad) {
  sim.run_until(sim.now() + Time::hours(2));
  auto& repo = grid.igoc().ml_repository();
  EXPECT_GT(repo.updates(), 0u);
  // Every site's gatekeeper load is retained in the RRD.
  const auto v = repo.read("BNL_ATLAS",
                           monitoring::mlmetric::kGatekeeperLoad,
                           sim.now() - Time::minutes(10));
  EXPECT_TRUE(v.has_value());
}

TEST_F(ExtendedFixture, LatencyBreakdownAccountsWaits) {
  apps::SdssCoadd sdss{grid};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "sdss") sdss.set_users(vu.app_admins, vu.users);
  }
  sdss.register_survey_segments(1);
  ASSERT_TRUE(sdss.launch_workflow());
  sim.run_until(sim.now() + Time::days(20));
  monitoring::MdViewer viewer{grid.igoc().job_db(), grid.igoc().bus()};
  const auto lb = viewer.latency_breakdown("sdss", Time::zero(), sim.now());
  EXPECT_GT(lb.jobs, 0u);
  EXPECT_GT(lb.avg_run_hours, 0.0);
  EXPECT_GE(lb.avg_wait_hours, 0.0);
  EXPECT_GT(lb.compute_efficiency(), 0.0);
  EXPECT_LE(lb.compute_efficiency(), 1.0);
}

TEST(ResourceFluctuation, CpuCountsVaryOverTheScenario) {
  sim::Simulation sim;
  apps::ScenarioOptions opts;
  opts.cpu_scale = 0.2;
  opts.job_scale = 0.01;
  opts.months = 2;
  opts.resource_fluctuation = true;
  apps::Scenario sc{sim, opts};
  sc.start();
  const int before = sc.grid().total_cpus();
  sc.run_until(util::month_start(2));
  const int after = sc.grid().total_cpus();
  // Shared sites resized at least once over two months.
  EXPECT_NE(before, after);
  // The milestone evaluator reports a peak >= the instantaneous count.
  const auto m = core::compute_milestones(sc.grid(), Time::zero(),
                                          sim.now());
  EXPECT_GE(m.cpus_peak, static_cast<double>(after));
}

// ---------------------------------------------------------------------
// Determinism across the whole stack: identical seeds -> identical
// month-by-month accounting, not just totals.
// ---------------------------------------------------------------------
TEST(Determinism, MonthlyHistogramsIdenticalAcrossRuns) {
  auto run_once = [] {
    sim::Simulation s;
    apps::ScenarioOptions opts;
    opts.cpu_scale = 0.06;
    opts.job_scale = 0.02;
    opts.months = 2;
    opts.seed = 424242;
    apps::Scenario sc{s, opts};
    sc.run();
    return sc.grid().igoc().job_db().jobs_by_month(2);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, DifferentSeedsDiverge) {
  auto run_with = [](std::uint64_t seed) {
    sim::Simulation s;
    apps::ScenarioOptions opts;
    opts.cpu_scale = 0.06;
    opts.job_scale = 0.02;
    opts.months = 1;
    opts.seed = seed;
    apps::Scenario sc{s, opts};
    sc.run();
    // A fingerprint that is vanishingly unlikely to collide: total CPU
    // seconds across all records.
    double cpu = 0.0;
    for (const auto& r : sc.grid().igoc().job_db().records()) {
      cpu += r.runtime().to_seconds();
    }
    return cpu;
  };
  EXPECT_NE(run_with(1), run_with(2));
}

}  // namespace
}  // namespace grid3
