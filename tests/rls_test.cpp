// Unit tests for the replica location service: LRC, RLI soft-state,
// staleness windows.
#include <gtest/gtest.h>

#include "rls/rls.h"

namespace grid3::rls {
namespace {

TEST(Lrc, AddLookupRemove) {
  LocalReplicaCatalog lrc{"BNL"};
  lrc.add("lfn1", {"gsiftp://BNL/lfn1", Bytes::gb(2), Time::zero()});
  lrc.add("lfn1", {"gsiftp://BNL/copy2", Bytes::gb(2), Time::zero()});
  EXPECT_TRUE(lrc.has("lfn1"));
  EXPECT_EQ(lrc.lookup("lfn1").size(), 2u);
  EXPECT_EQ(lrc.replica_count(), 2u);
  EXPECT_TRUE(lrc.remove("lfn1", "gsiftp://BNL/copy2"));
  EXPECT_EQ(lrc.lookup("lfn1").size(), 1u);
  EXPECT_EQ(lrc.remove_lfn("lfn1"), 1u);
  EXPECT_FALSE(lrc.has("lfn1"));
}

TEST(Lrc, DuplicatePfnUpdatesInPlace) {
  LocalReplicaCatalog lrc{"BNL"};
  lrc.add("lfn", {"pfn", Bytes::gb(1), Time::zero()});
  lrc.add("lfn", {"pfn", Bytes::gb(3), Time::seconds(5)});
  const auto replicas = lrc.lookup("lfn");
  ASSERT_EQ(replicas.size(), 1u);
  EXPECT_EQ(replicas[0].size, Bytes::gb(3));
}

TEST(Lrc, DownCatalogAnswersNothing) {
  LocalReplicaCatalog lrc{"BNL"};
  lrc.add("lfn", {"pfn", Bytes::gb(1), Time::zero()});
  lrc.set_available(false);
  EXPECT_FALSE(lrc.has("lfn"));
  EXPECT_TRUE(lrc.lookup("lfn").empty());
}

TEST(Rli, SoftStateExpiry) {
  LocalReplicaCatalog lrc{"BNL"};
  lrc.add("lfn", {"pfn", Bytes::gb(1), Time::zero()});
  ReplicaLocationIndex rli{"rli"};
  rli.set_ttl(Time::minutes(30));
  rli.update_from(lrc, Time::zero());
  EXPECT_EQ(rli.sites_with("lfn", Time::minutes(10)).size(), 1u);
  // Without refresh the entry lapses.
  EXPECT_TRUE(rli.sites_with("lfn", Time::hours(1)).empty());
  rli.update_from(lrc, Time::hours(1));
  EXPECT_EQ(rli.sites_with("lfn", Time::hours(1)).size(), 1u);
}

TEST(Rli, FullStateDigestDropsRemovedEntries) {
  LocalReplicaCatalog lrc{"BNL"};
  lrc.add("old", {"pfn", Bytes::gb(1), Time::zero()});
  ReplicaLocationIndex rli{"rli"};
  rli.update_from(lrc, Time::zero());
  lrc.remove_lfn("old");
  lrc.add("new", {"pfn2", Bytes::gb(1), Time::zero()});
  rli.update_from(lrc, Time::seconds(10));
  EXPECT_TRUE(rli.sites_with("old", Time::seconds(10)).empty());
  EXPECT_EQ(rli.sites_with("new", Time::seconds(10)).size(), 1u);
}

TEST(Rls, RegisterAndLocateAcrossSites) {
  ReplicaLocationService rls{"usatlas"};
  rls.register_replica("BNL", "dataset1",
                       {"gsiftp://BNL/d1", Bytes::gb(2), Time::zero()},
                       Time::zero());
  rls.register_replica("UC_ATLAS", "dataset1",
                       {"gsiftp://UC/d1", Bytes::gb(2), Time::zero()},
                       Time::zero());
  const auto located = rls.locate("dataset1", Time::minutes(1));
  EXPECT_EQ(located.size(), 2u);
  EXPECT_EQ(rls.lrc_count(), 2u);
  EXPECT_TRUE(rls.locate("missing", Time::zero()).empty());
}

TEST(Rls, StaleIndexHidesUnrefreshedSites) {
  ReplicaLocationService rls{"uscms"};
  rls.rli().set_ttl(Time::minutes(20));
  rls.register_replica("FNAL", "pileup",
                       {"gsiftp://FNAL/p", Bytes::gb(1), Time::zero()},
                       Time::zero());
  EXPECT_EQ(rls.locate("pileup", Time::minutes(10)).size(), 1u);
  EXPECT_TRUE(rls.locate("pileup", Time::hours(2)).empty());
  rls.refresh_all(Time::hours(2));
  EXPECT_EQ(rls.locate("pileup", Time::hours(2)).size(), 1u);
}

TEST(Rls, DownLrcSkippedOnRefresh) {
  ReplicaLocationService rls{"sdss"};
  rls.register_replica("JHU", "seg", {"pfn", Bytes::mb(500), Time::zero()},
                       Time::zero());
  rls.lrc_for("JHU").set_available(false);
  rls.refresh_all(Time::hours(1));
  // Refresh skipped the down LRC, so the RLI entry ages out...
  EXPECT_TRUE(rls.locate("seg", Time::hours(2)).empty());
  // ...until the catalog recovers and a later refresh re-advertises it.
  rls.lrc_for("JHU").set_available(true);
  rls.refresh_all(Time::hours(2));
  EXPECT_EQ(rls.locate("seg", Time::hours(2)).size(), 1u);
}

}  // namespace
}  // namespace grid3::rls
