// Unit tests for the replica location service: LRC, RLI soft-state,
// staleness windows.
#include <gtest/gtest.h>

#include "rls/rls.h"

namespace grid3::rls {
namespace {

TEST(Lrc, AddLookupRemove) {
  LocalReplicaCatalog lrc{"BNL"};
  lrc.add("lfn1", {"gsiftp://BNL/lfn1", Bytes::gb(2), Time::zero()});
  lrc.add("lfn1", {"gsiftp://BNL/copy2", Bytes::gb(2), Time::zero()});
  EXPECT_TRUE(lrc.has("lfn1"));
  EXPECT_EQ(lrc.lookup("lfn1").size(), 2u);
  EXPECT_EQ(lrc.replica_count(), 2u);
  EXPECT_TRUE(lrc.remove("lfn1", "gsiftp://BNL/copy2"));
  EXPECT_EQ(lrc.lookup("lfn1").size(), 1u);
  EXPECT_EQ(lrc.remove_lfn("lfn1"), 1u);
  EXPECT_FALSE(lrc.has("lfn1"));
}

TEST(Lrc, DuplicatePfnUpdatesInPlace) {
  LocalReplicaCatalog lrc{"BNL"};
  lrc.add("lfn", {"pfn", Bytes::gb(1), Time::zero()});
  lrc.add("lfn", {"pfn", Bytes::gb(3), Time::seconds(5)});
  const auto replicas = lrc.lookup("lfn");
  ASSERT_EQ(replicas.size(), 1u);
  EXPECT_EQ(replicas[0].size, Bytes::gb(3));
}

TEST(Lrc, DownCatalogAnswersNothing) {
  LocalReplicaCatalog lrc{"BNL"};
  lrc.add("lfn", {"pfn", Bytes::gb(1), Time::zero()});
  lrc.set_available(false);
  EXPECT_FALSE(lrc.has("lfn"));
  EXPECT_TRUE(lrc.lookup("lfn").empty());
}

TEST(Rli, SoftStateExpiry) {
  LocalReplicaCatalog lrc{"BNL"};
  lrc.add("lfn", {"pfn", Bytes::gb(1), Time::zero()});
  ReplicaLocationIndex rli{"rli"};
  rli.set_ttl(Time::minutes(30));
  rli.update_from(lrc, Time::zero());
  EXPECT_EQ(rli.sites_with("lfn", Time::minutes(10)).size(), 1u);
  // Without refresh the entry lapses.
  EXPECT_TRUE(rli.sites_with("lfn", Time::hours(1)).empty());
  rli.update_from(lrc, Time::hours(1));
  EXPECT_EQ(rli.sites_with("lfn", Time::hours(1)).size(), 1u);
}

TEST(Rli, FullStateDigestDropsRemovedEntries) {
  LocalReplicaCatalog lrc{"BNL"};
  lrc.add("old", {"pfn", Bytes::gb(1), Time::zero()});
  ReplicaLocationIndex rli{"rli"};
  rli.update_from(lrc, Time::zero());
  lrc.remove_lfn("old");
  lrc.add("new", {"pfn2", Bytes::gb(1), Time::zero()});
  rli.update_from(lrc, Time::seconds(10));
  EXPECT_TRUE(rli.sites_with("old", Time::seconds(10)).empty());
  EXPECT_EQ(rli.sites_with("new", Time::seconds(10)).size(), 1u);
}

TEST(Rls, RegisterAndLocateAcrossSites) {
  ReplicaLocationService rls{"usatlas"};
  rls.register_replica("BNL", "dataset1",
                       {"gsiftp://BNL/d1", Bytes::gb(2), Time::zero()},
                       Time::zero());
  rls.register_replica("UC_ATLAS", "dataset1",
                       {"gsiftp://UC/d1", Bytes::gb(2), Time::zero()},
                       Time::zero());
  const auto located = rls.locate("dataset1", Time::minutes(1));
  EXPECT_EQ(located.size(), 2u);
  EXPECT_EQ(rls.lrc_count(), 2u);
  EXPECT_TRUE(rls.locate("missing", Time::zero()).empty());
}

TEST(Rls, StaleIndexHidesUnrefreshedSites) {
  ReplicaLocationService rls{"uscms"};
  rls.rli().set_ttl(Time::minutes(20));
  rls.register_replica("FNAL", "pileup",
                       {"gsiftp://FNAL/p", Bytes::gb(1), Time::zero()},
                       Time::zero());
  EXPECT_EQ(rls.locate("pileup", Time::minutes(10)).size(), 1u);
  EXPECT_TRUE(rls.locate("pileup", Time::hours(2)).empty());
  rls.refresh_all(Time::hours(2));
  EXPECT_EQ(rls.locate("pileup", Time::hours(2)).size(), 1u);
}

TEST(Rls, DownLrcSkippedOnRefresh) {
  ReplicaLocationService rls{"sdss"};
  rls.register_replica("JHU", "seg", {"pfn", Bytes::mb(500), Time::zero()},
                       Time::zero());
  rls.lrc_for("JHU").set_available(false);
  rls.refresh_all(Time::hours(1));
  // Refresh skipped the down LRC, so the RLI entry ages out...
  EXPECT_TRUE(rls.locate("seg", Time::hours(2)).empty());
  // ...until the catalog recovers and a later refresh re-advertises it.
  rls.lrc_for("JHU").set_available(true);
  rls.refresh_all(Time::hours(2));
  EXPECT_EQ(rls.locate("seg", Time::hours(2)).size(), 1u);
}

TEST(Rli, DigestLagServesPreUpdateSetThenConverges) {
  // Soft-state staleness: a replica added straight to an LRC is
  // invisible to the index until that LRC's next digest push.  Queries
  // in the lag window return the pre-update set -- never an error --
  // and converge after the push.
  ReplicaLocationService rls{"usatlas"};
  rls.register_replica("BNL", "aod",
                       {"gsiftp://BNL/aod", Bytes::gb(1), Time::zero()},
                       Time::zero());
  rls.lrc_for("UC").add("aod",
                        {"gsiftp://UC/aod", Bytes::gb(1), Time::minutes(5)});
  auto lagged = rls.locate("aod", Time::minutes(6));
  ASSERT_EQ(lagged.size(), 1u);
  EXPECT_EQ(lagged[0].first, "BNL");
  EXPECT_FALSE(rls.has_replica_at("aod", "UC", Time::minutes(6)));
  rls.refresh_all(Time::minutes(20));
  auto converged = rls.locate("aod", Time::minutes(21));
  ASSERT_EQ(converged.size(), 2u);
  EXPECT_EQ(converged[0].first, "BNL");
  EXPECT_EQ(converged[1].first, "UC");
  EXPECT_TRUE(rls.has_replica_at("aod", "UC", Time::minutes(21)));
}

TEST(Rls, RliOutageFallsBackToDirectLrcScan) {
  ReplicaLocationService rls{"usatlas"};
  rls.register_replica("BNL", "esd",
                       {"gsiftp://BNL/esd", Bytes::gb(2), Time::zero()},
                       Time::zero());
  rls.rli().set_available(false);
  // The index answers nothing itself...
  EXPECT_TRUE(rls.rli().sites_with("esd", Time::minutes(1)).empty());
  // ...but the facade degrades to the authoritative catalogs.
  auto located = rls.locate("esd", Time::minutes(1));
  ASSERT_EQ(located.size(), 1u);
  EXPECT_EQ(located[0].first, "BNL");
  EXPECT_TRUE(rls.has_replica_at("esd", "BNL", Time::minutes(1)));
  EXPECT_FALSE(rls.has_replica_at("esd", "UC", Time::minutes(1)));
}

TEST(Rls, JournalHoldsRegistrationsAcrossAnOutage) {
  ReplicaLocationService rls{"usatlas"};
  rls.set_available(false);
  rls.register_replica("BNL", "evgen",
                       {"gsiftp://BNL/evgen", Bytes::gb(1), Time::zero()},
                       Time::zero());
  rls.register_replica("UC", "evgen",
                       {"gsiftp://UC/evgen", Bytes::gb(1), Time::zero()},
                       Time::zero());
  // Intent logged, nothing applied, nothing lost.
  EXPECT_EQ(rls.journal().size(), 2u);
  EXPECT_EQ(rls.journal().pending(), 2u);
  EXPECT_EQ(rls.lost_registrations(), 0u);
  EXPECT_FALSE(rls.lrc_for("BNL").has("evgen"));
  // Recovery: the replay applies both, exactly once, and a second
  // replay finds nothing to do.
  rls.set_available(true);
  EXPECT_EQ(rls.replay(Time::minutes(30)), 2u);
  EXPECT_EQ(rls.journal().pending(), 0u);
  EXPECT_EQ(rls.journal().replayed(), 2u);
  EXPECT_EQ(rls.replay(Time::minutes(31)), 0u);
  EXPECT_EQ(rls.journal().replayed(), 2u);
  EXPECT_EQ(rls.locate("evgen", Time::minutes(31)).size(), 2u);
}

TEST(Rls, ReplaySkipsEntriesWhoseLrcIsStillDown) {
  ReplicaLocationService rls{"usatlas"};
  rls.lrc_for("IU").set_available(false);
  rls.set_available(false);
  rls.register_replica("BNL", "f1", {"p1", Bytes::mb(1), Time::zero()},
                       Time::zero());
  rls.register_replica("IU", "f2", {"p2", Bytes::mb(1), Time::zero()},
                       Time::zero());
  rls.set_available(true);
  // Only the reachable catalog drains; the IU entry stays pending.
  EXPECT_EQ(rls.replay(Time::minutes(5)), 1u);
  EXPECT_EQ(rls.journal().pending(), 1u);
  rls.lrc_for("IU").set_available(true);
  EXPECT_EQ(rls.replay(Time::minutes(10)), 1u);
  EXPECT_EQ(rls.journal().pending(), 0u);
  EXPECT_TRUE(rls.lrc_for("IU").has("f2"));
}

TEST(Rls, DownLrcJournalsEvenWithTheEndpointUp) {
  // The endpoint being reachable does not help when the target catalog
  // itself is down: the write-ahead entry still protects the intent.
  ReplicaLocationService rls{"usatlas"};
  rls.lrc_for("BNL").set_available(false);
  rls.register_replica("BNL", "hits", {"p", Bytes::mb(1), Time::zero()},
                       Time::zero());
  EXPECT_EQ(rls.journal().pending(), 1u);
  rls.lrc_for("BNL").set_available(true);
  // The periodic soft-state refresh doubles as the replay trigger.
  rls.refresh_all(Time::minutes(20));
  EXPECT_EQ(rls.journal().pending(), 0u);
  EXPECT_EQ(rls.locate("hits", Time::minutes(21)).size(), 1u);
}

TEST(Rls, NaiveModeDropsAndCountsLostRegistrations) {
  ReplicaLocationService rls{"usatlas"};
  rls.set_journal_enabled(false);
  rls.set_available(false);
  rls.register_replica("BNL", "raw", {"p", Bytes::gb(1), Time::zero()},
                       Time::zero());
  EXPECT_EQ(rls.lost_registrations(), 1u);
  EXPECT_EQ(rls.journal().size(), 0u);
  rls.set_available(true);
  rls.replay(Time::minutes(5));
  rls.refresh_all(Time::minutes(20));
  EXPECT_TRUE(rls.locate("raw", Time::minutes(21)).empty());
  // Up-path registrations still work without the journal.
  rls.register_replica("BNL", "raw2", {"p2", Bytes::gb(1), Time::zero()},
                       Time::minutes(25));
  EXPECT_EQ(rls.locate("raw2", Time::minutes(26)).size(), 1u);
}

TEST(Rls, JournalAuditSeesEveryTransitionExactlyOnce) {
  ReplicaLocationService rls{"usatlas"};
  std::vector<std::string> events;
  rls.journal().set_audit([&](const JournalEntry& e, const char* event) {
    events.push_back(std::string{event} + ":" + e.lfn);
  });
  rls.register_replica("BNL", "a", {"pa", Bytes::mb(1), Time::zero()},
                       Time::zero());
  rls.set_available(false);
  rls.register_replica("BNL", "b", {"pb", Bytes::mb(1), Time::zero()},
                       Time::zero());
  rls.set_available(true);
  rls.replay(Time::minutes(1));
  const std::vector<std::string> want{"log:a", "apply:a", "log:b", "replay:b"};
  EXPECT_EQ(events, want);
}

}  // namespace
}  // namespace grid3::rls
