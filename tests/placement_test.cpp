// Unit + integration tests for the unified data-placement layer:
// PlacementLedger lease lifecycle, broker lease threading (full archive
// = match-time hold, not a stage-out failure), and the drained-scenario
// invariant that SRM reserved space returns to zero on every path.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "monitoring/mdviewer.h"
#include "pacman/vdt.h"
#include "placement/ledger.h"
#include "sim/simulation.h"
#include "srm/disk.h"
#include "srm/srm.h"
#include "workflow/dagman.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace grid3::placement {
namespace {

/// Single-site stub for ledger unit tests.
class StubDirectory : public StorageDirectory {
 public:
  srm::StorageResourceManager* srm = nullptr;
  srm::DiskVolume* vol = nullptr;
  srm::StorageResourceManager* storage(const std::string&) override {
    return srm;
  }
  srm::DiskVolume* volume(const std::string&) override { return vol; }
  gridftp::GridFtpServer* ftp(const std::string&) override {
    return nullptr;
  }
};

/// Multi-site stub for failover-chain unit tests: each site gets its own
/// volume, optionally fronted by an SRM.
class ChainDirectory : public StorageDirectory {
 public:
  struct Entry {
    srm::StorageResourceManager* srm = nullptr;
    srm::DiskVolume* vol = nullptr;
  };
  std::map<std::string, Entry> sites;
  srm::StorageResourceManager* storage(const std::string& s) override {
    auto it = sites.find(s);
    return it == sites.end() ? nullptr : it->second.srm;
  }
  srm::DiskVolume* volume(const std::string& s) override {
    auto it = sites.find(s);
    return it == sites.end() ? nullptr : it->second.vol;
  }
  gridftp::GridFtpServer* ftp(const std::string&) override {
    return nullptr;
  }
};

TEST(PlacementLedger, AcquireReservesAndConsumeConvertsToAllocation) {
  srm::DiskVolume disk{"se:/data", Bytes::gb(10)};
  srm::StorageResourceManager srm{"se", disk};
  StubDirectory dir;
  dir.srm = &srm;
  dir.vol = &disk;
  PlacementLedger ledger{"usatlas", dir};

  const auto res =
      ledger.acquire("SE", Bytes::gb(2), "dc2", {"out"}, Time::zero());
  ASSERT_TRUE(res.leased());
  EXPECT_EQ(ledger.active(), 1u);
  EXPECT_EQ(ledger.leased_bytes(), Bytes::gb(2));
  EXPECT_EQ(srm.reserved_total(), Bytes::gb(2));
  EXPECT_NE(ledger.srm_for(res.lease), nullptr);
  ASSERT_NE(ledger.find(res.lease), nullptr);
  EXPECT_NE(ledger.find(res.lease)->reservation, 0u);

  EXPECT_TRUE(ledger.consume(res.lease, "BNL", Time::minutes(90)));
  // The archived file persists as a plain allocation; the reservation
  // itself has drained.
  EXPECT_EQ(srm.reserved_total(), Bytes::zero());
  EXPECT_EQ(disk.used(), Bytes::gb(2));
  EXPECT_EQ(ledger.active(), 0u);
  EXPECT_EQ(ledger.acquired(), 1u);
  EXPECT_EQ(ledger.consumed(), 1u);
}

TEST(PlacementLedger, ReleaseReturnsEveryByte) {
  srm::DiskVolume disk{"se:/data", Bytes::gb(10)};
  srm::StorageResourceManager srm{"se", disk};
  StubDirectory dir;
  dir.srm = &srm;
  dir.vol = &disk;
  PlacementLedger ledger{"usatlas", dir};

  const auto res =
      ledger.acquire("SE", Bytes::gb(4), "dc2", {}, Time::zero());
  ASSERT_TRUE(res.leased());
  EXPECT_TRUE(ledger.release(res.lease, Time::minutes(5)));
  EXPECT_EQ(srm.reserved_total(), Bytes::zero());
  EXPECT_EQ(disk.used(), Bytes::zero());
  EXPECT_EQ(ledger.released(), 1u);
  // Idempotent: the lease is gone.
  EXPECT_FALSE(ledger.release(res.lease, Time::minutes(6)));
}

TEST(PlacementLedger, FullDestinationRejects) {
  srm::DiskVolume disk{"se:/data", Bytes::gb(3)};
  srm::StorageResourceManager srm{"se", disk};
  StubDirectory dir;
  dir.srm = &srm;
  dir.vol = &disk;
  PlacementLedger ledger{"usatlas", dir};

  const auto big =
      ledger.acquire("SE", Bytes::gb(5), "dc2", {}, Time::zero());
  EXPECT_EQ(big.status, AcquireStatus::kDiskFull);
  EXPECT_EQ(ledger.rejected(), 1u);
  EXPECT_EQ(ledger.active(), 0u);
  EXPECT_EQ(srm.reserved_total(), Bytes::zero());
}

TEST(PlacementLedger, ProbeModeWithoutSrm) {
  srm::DiskVolume disk{"host:/tape", Bytes::gb(3)};
  StubDirectory dir;
  dir.vol = &disk;  // no SRM: unmanaged endpoint
  PlacementLedger ledger{"uscms", dir};

  const auto ok =
      ledger.acquire("HOST", Bytes::gb(2), "mop", {}, Time::zero());
  ASSERT_TRUE(ok.leased());
  // Probe mode holds no reservation; it only vetoed a hopeless match.
  EXPECT_EQ(ledger.srm_for(ok.lease), nullptr);
  EXPECT_EQ(ledger.find(ok.lease)->reservation, 0u);
  EXPECT_EQ(disk.used(), Bytes::zero());
  EXPECT_TRUE(ledger.release(ok.lease, Time::minutes(1)));

  // A destination already too full is still rejected up front.
  disk.consume_unmanaged(Bytes::gb(2));
  const auto full =
      ledger.acquire("HOST", Bytes::gb(2), "mop", {}, Time::minutes(2));
  EXPECT_EQ(full.status, AcquireStatus::kDiskFull);
  EXPECT_EQ(ledger.rejected(), 1u);
}

TEST(PlacementLedger, UnknownDestinationHasNoStorage) {
  StubDirectory dir;
  PlacementLedger ledger{"ivdgl", dir};
  const auto res =
      ledger.acquire("NOWHERE", Bytes::gb(1), "ex", {}, Time::zero());
  EXPECT_EQ(res.status, AcquireStatus::kNoStorage);
  EXPECT_EQ(res.lease, 0u);
  EXPECT_EQ(ledger.acquired(), 0u);
  EXPECT_EQ(ledger.rejected(), 0u);
}

// --- failover chains -------------------------------------------------------

/// Two SRM-fronted SEs for chain tests: PRIMARY small, FALLBACK roomy.
struct ChainRig {
  srm::DiskVolume d1{"primary:/data", Bytes::gb(1)};
  srm::StorageResourceManager s1{"primary", d1};
  srm::DiskVolume d2{"fallback:/data", Bytes::gb(10)};
  srm::StorageResourceManager s2{"fallback", d2};
  ChainDirectory dir;
  ChainRig() {
    dir.sites["PRIMARY"] = {&s1, &d1};
    dir.sites["FALLBACK"] = {&s2, &d2};
  }
  [[nodiscard]] std::vector<std::string> chain() const {
    return {"PRIMARY", "FALLBACK"};
  }
};

TEST(PlacementChain, FullPrimaryFallsThroughToSecondSe) {
  ChainRig rig;
  PlacementLedger ledger{"uscms", rig.dir};
  const auto res =
      ledger.acquire(rig.chain(), Bytes::gb(2), "mop", {"out"}, Time::zero());
  ASSERT_TRUE(res.leased());
  EXPECT_EQ(res.site, "FALLBACK");
  EXPECT_EQ(res.hops, 1);
  ASSERT_EQ(res.refused_sites.size(), 1u);
  EXPECT_EQ(res.refused_sites[0], "PRIMARY");
  EXPECT_EQ(ledger.fallthroughs(), 1u);
  const StageOutLease* l = ledger.find(res.lease);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->dest_site, "FALLBACK");
  EXPECT_EQ(l->primary_site, "PRIMARY");
  EXPECT_EQ(l->hops, 1);
  // The reservation lives at the SE that accepted, not the primary.
  EXPECT_EQ(rig.s1.reserved_total(), Bytes::zero());
  EXPECT_EQ(rig.s2.reserved_total(), Bytes::gb(2));
  // Consume converts at the resolved SE.
  EXPECT_TRUE(ledger.consume(res.lease, "ALPHA", Time::minutes(30)));
  EXPECT_EQ(rig.s2.reserved_total(), Bytes::zero());
  EXPECT_EQ(rig.d2.used(), Bytes::gb(2));
  EXPECT_EQ(rig.d1.used(), Bytes::zero());
}

TEST(PlacementChain, WholeChainFullRejectsAsDiskFull) {
  ChainRig rig;
  PlacementLedger ledger{"uscms", rig.dir};
  // 20 GB fits neither the 1 GB primary nor the 10 GB fallback.
  const auto res =
      ledger.acquire(rig.chain(), Bytes::gb(20), "mop", {}, Time::zero());
  EXPECT_EQ(res.status, AcquireStatus::kDiskFull);
  EXPECT_EQ(res.hops, 1);
  EXPECT_EQ(res.refused_sites.size(), 2u);
  EXPECT_EQ(ledger.rejected(), 1u);
  EXPECT_EQ(ledger.active(), 0u);
  EXPECT_EQ(rig.s1.reserved_total(), Bytes::zero());
  EXPECT_EQ(rig.s2.reserved_total(), Bytes::zero());
}

TEST(PlacementChain, QuarantinedPrimarySkippedByAdmissibilityFilter) {
  ChainRig rig;
  PlacementLedger ledger{"uscms", rig.dir};
  ledger.set_admissibility(
      [](const std::string& site) { return site != "PRIMARY"; });
  // PRIMARY has room for 0.5 GB, but the filter (the health monitor's
  // quarantine in production) vetoes it: the lease lands at FALLBACK.
  const auto res = ledger.acquire(rig.chain(), Bytes::mb(512), "mop", {},
                                  Time::zero());
  ASSERT_TRUE(res.leased());
  EXPECT_EQ(res.site, "FALLBACK");
  EXPECT_EQ(res.hops, 1);
  // A quarantine veto is not a storage refusal: no health signal.
  EXPECT_TRUE(res.refused_sites.empty());
  EXPECT_EQ(rig.s1.reserved_total(), Bytes::zero());
  EXPECT_EQ(rig.s2.reserved_total(), Bytes::mb(512));
}

TEST(PlacementChain, EveryEntryQuarantinedRejects) {
  ChainRig rig;
  PlacementLedger ledger{"uscms", rig.dir};
  ledger.set_admissibility([](const std::string&) { return false; });
  const auto res =
      ledger.acquire(rig.chain(), Bytes::mb(1), "mop", {}, Time::zero());
  EXPECT_EQ(res.status, AcquireStatus::kDiskFull);
  EXPECT_EQ(ledger.rejected(), 1u);
}

TEST(PlacementChain, AllUnknownChainStaysNoStorage) {
  StubDirectory dir;  // knows no sites at all
  PlacementLedger ledger{"ivdgl", dir};
  const auto res = ledger.acquire(std::vector<std::string>{"A", "B"},
                                  Bytes::gb(1), "ex", {}, Time::zero());
  EXPECT_EQ(res.status, AcquireStatus::kNoStorage);
  EXPECT_EQ(ledger.rejected(), 0u);
}

TEST(PlacementChain, ReleaseExactlyOnceOnFallthroughLease) {
  ChainRig rig;
  PlacementLedger ledger{"uscms", rig.dir};
  const auto res =
      ledger.acquire(rig.chain(), Bytes::gb(2), "mop", {}, Time::zero());
  ASSERT_TRUE(res.leased());
  ASSERT_EQ(res.site, "FALLBACK");
  EXPECT_TRUE(ledger.release(res.lease, Time::minutes(5)));
  EXPECT_EQ(rig.s2.reserved_total(), Bytes::zero());
  EXPECT_EQ(rig.d2.used(), Bytes::zero());
  EXPECT_EQ(ledger.released(), 1u);
  // Second release and late consume are both dead: the lease is gone.
  EXPECT_FALSE(ledger.release(res.lease, Time::minutes(6)));
  EXPECT_FALSE(ledger.consume(res.lease, "ALPHA", Time::minutes(7)));
  EXPECT_EQ(ledger.released(), 1u);
  EXPECT_EQ(rig.s2.reserved_total(), Bytes::zero());
}

/// One execution site plus an SRM-fronted archive SE with a small disk,
/// brokered: the fabric every lease-lifecycle scenario runs against.
class PlacementFixture : public ::testing::Test {
 protected:
  sim::Simulation sim;
  core::Grid3 grid{sim, 77};
  vo::VomsProxy proxy;
  int serial = 0;
  std::optional<workflow::DagRunStats> stats;

  void SetUp() override { setup({}); }

  void setup(broker::BrokerConfig cfg) {
    grid.add_vo("usatlas");
    grid.attach_broker("usatlas", broker::PolicyKind::kQueueDepth, cfg);
    pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                    Time::minutes(5));
    core::SiteConfig a;
    a.name = "ALPHA";
    a.owner_vo = "usatlas";
    a.cpus = 16;
    a.policy.max_walltime = Time::hours(48);
    a.policy.dedicated = true;
    core::SiteConfig se = a;
    se.name = "ARCHIVE";
    se.cpus = 2;
    se.disk = Bytes::gb(3);  // a tight Tier1 SE
    se.deploy_srm = true;
    grid.add_site(a, /*reliability=*/1000.0);
    grid.add_site(se, /*reliability=*/1000.0);
    // The application runs only at ALPHA; ARCHIVE is storage-only.
    grid.site("ALPHA")->install_application(grid.igoc().pacman_cache(),
                                            "app");
    const vo::Certificate cert =
        grid.add_user("usatlas", "tester", vo::Role::kAppAdmin);
    proxy = *grid.make_proxy(cert, "usatlas", Time::hours(400));
    const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
    grid.site("ALPHA")->refresh_gridmap(servers);
    grid.site("ARCHIVE")->refresh_gridmap(servers);
    for (const char* site : {"ALPHA", "ARCHIVE"}) {
      grid.site(site)->gatekeeper().set_submission_flake_rate(0.0);
      grid.site(site)->gatekeeper().set_environment_error_rate(0.0);
    }
    grid.start_operations();
    sim.run_until(Time::minutes(1));
  }

  /// Single-derivation workflow archiving one ~1 GB output to ARCHIVE,
  /// optionally with failover SEs behind it.
  std::optional<workflow::ConcreteDag> plan_one(
      std::vector<std::string> fallbacks = {}) {
    workflow::VirtualDataCatalog vdc;
    vdc.add_transformation({"tf", "1", "app"});
    workflow::Derivation d;
    d.id = "job" + std::to_string(serial);
    d.transformation = "tf";
    d.outputs = {"out" + std::to_string(serial)};
    ++serial;
    d.runtime = Time::hours(1);
    d.output_size = Bytes::gb(1);
    d.scratch = Bytes::gb(1);
    vdc.add_derivation(d);
    const auto dag = vdc.request(d.outputs);
    workflow::PegasusPlanner planner{grid.igoc().top_giis(),
                                     *grid.rls("usatlas")};
    planner.set_broker(grid.broker("usatlas"));
    workflow::PlannerConfig cfg;
    cfg.vo = "usatlas";
    cfg.archive_site = "ARCHIVE";
    cfg.archive_fallbacks = std::move(fallbacks);
    util::Rng rng{9};
    return planner.plan(*dag, cfg, rng, sim.now());
  }

  /// Plans and launches one workflow; the result lands in `stats`.
  void run_one(std::vector<std::string> fallbacks = {}) {
    auto plan = plan_one(std::move(fallbacks));
    ASSERT_TRUE(plan.has_value());
    grid.dagman("usatlas").run(std::move(*plan), proxy,
                               [this](const workflow::DagRunStats& s) {
                                 stats = s;
                               });
  }

  [[nodiscard]] srm::StorageResourceManager& archive_srm() {
    return *grid.site("ARCHIVE")->storage_element();
  }
};

TEST_F(PlacementFixture, LeaseConsumedOnSuccessAndOutputRegistered) {
  auto plan = plan_one();
  ASSERT_TRUE(plan.has_value());
  // The intent rides the compute node; no stage-out/register nodes.
  EXPECT_EQ(plan->count(workflow::NodeType::kStageOut), 0u);
  EXPECT_EQ(plan->count(workflow::NodeType::kRegister), 0u);

  grid.dagman("usatlas").run(std::move(*plan), proxy,
                             [this](const workflow::DagRunStats& s) {
                               stats = s;
                             });
  sim.run_until(sim.now() + Time::days(1));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);

  PlacementLedger* ledger = grid.placement("usatlas");
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->acquired(), 1u);
  EXPECT_EQ(ledger->consumed(), 1u);
  EXPECT_EQ(ledger->active(), 0u);
  // The reservation drained into a durable allocation at the SE.
  EXPECT_EQ(archive_srm().reserved_total(), Bytes::zero());
  EXPECT_GE(grid.site("ARCHIVE")->disk().used(), Bytes::gb(1));
  // DAGMan executed the registration intent.
  EXPECT_FALSE(grid.rls("usatlas")->locate("out0", sim.now()).empty());
  // Both the broker and the ledger published their counters.
  EXPECT_FALSE(grid.igoc()
                   .bus()
                   .series("usatlas", metric::kLeasesAcquired)
                   .empty());
  EXPECT_FALSE(grid.igoc()
                   .bus()
                   .series("usatlas", broker::metric::kMatches)
                   .empty());
}

TEST_F(PlacementFixture, LeasesReleasedWhenSubmissionsFail) {
  // Every execution site dead: the broker re-matches until rebinds
  // exhaust.  Each attempt's lease must come back.
  grid.site("ALPHA")->gatekeeper().set_available(false);
  run_one();
  sim.run_until(sim.now() + Time::days(2));
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->success);
  PlacementLedger* ledger = grid.placement("usatlas");
  ASSERT_NE(ledger, nullptr);
  EXPECT_GT(ledger->acquired(), 0u);
  EXPECT_EQ(ledger->released(), ledger->acquired());
  EXPECT_EQ(ledger->consumed(), 0u);
  EXPECT_EQ(ledger->active(), 0u);
  // The drained-scenario invariant: no reserved byte leaks.
  EXPECT_EQ(archive_srm().reserved_total(), Bytes::zero());
  EXPECT_EQ(grid.site("ARCHIVE")->disk().used(), Bytes::zero());
}

TEST_F(PlacementFixture, FullArchiveHoldsMatchUntilSpaceFrees) {
  // Fill the 3 GB archive so a 1 GB lease cannot be reserved, then free
  // it an hour in: the job waits in the broker and then completes.
  srm::DiskVolume& disk = grid.site("ARCHIVE")->disk();
  disk.consume_unmanaged(Bytes::mb(2500));
  sim.schedule_in(Time::hours(1), [&] { disk.cleanup(Bytes::mb(2500)); });

  run_one();
  sim.run_until(sim.now() + Time::days(1));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);
  broker::ResourceBroker* b = grid.broker("usatlas");
  PlacementLedger* ledger = grid.placement("usatlas");
  EXPECT_GT(b->storage_holds(), 0u);
  EXPECT_GT(ledger->rejected(), 0u);
  EXPECT_EQ(ledger->consumed(), 1u);
  EXPECT_EQ(ledger->active(), 0u);
  EXPECT_EQ(archive_srm().reserved_total(), Bytes::zero());
  EXPECT_GE(disk.used(), Bytes::gb(1));
}

/// Same fabric with a short broker max-hold, for the permanent-full case.
class ShortHoldPlacementFixture : public PlacementFixture {
 protected:
  void SetUp() override {
    broker::BrokerConfig cfg;
    cfg.hold.deadline = Time::hours(2);
    setup(cfg);
  }
};

/// PlacementFixture plus a second, roomier archive SE for failover-chain
/// integration tests.
class ChainPlacementFixture : public PlacementFixture {
 protected:
  void SetUp() override { setup_chain({}); }

  void setup_chain(broker::BrokerConfig cfg) {
    setup(cfg);
    core::SiteConfig se2;
    se2.name = "ARCHIVE2";
    se2.owner_vo = "usatlas";
    se2.cpus = 2;
    se2.disk = Bytes::gb(10);
    se2.deploy_srm = true;
    se2.policy.max_walltime = Time::hours(48);
    se2.policy.dedicated = true;
    grid.add_site(se2, /*reliability=*/1000.0);
    const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
    grid.site("ARCHIVE2")->refresh_gridmap(servers);
    grid.site("ARCHIVE2")->gatekeeper().set_submission_flake_rate(0.0);
    grid.site("ARCHIVE2")->gatekeeper().set_environment_error_rate(0.0);
    sim.run_until(sim.now() + Time::minutes(1));
  }
};

TEST_F(ChainPlacementFixture, FullPrimaryArchivesAtFallbackSe) {
  // ARCHIVE is full forever; the chain resolves the lease at ARCHIVE2
  // and the workflow completes with zero stage-out failures.
  grid.site("ARCHIVE")->disk().consume_unmanaged(Bytes::gb(3));
  run_one({"ARCHIVE2"});
  sim.run_until(sim.now() + Time::days(1));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);

  PlacementLedger* ledger = grid.placement("usatlas");
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->consumed(), 1u);
  EXPECT_GE(ledger->fallthroughs(), 1u);
  EXPECT_EQ(ledger->active(), 0u);
  // The bytes landed at the fallback; the primary holds only its fill.
  EXPECT_GE(grid.site("ARCHIVE2")->disk().used(), Bytes::gb(1));
  EXPECT_EQ(grid.site("ARCHIVE")->disk().used(), Bytes::gb(3));
  EXPECT_EQ(grid.site("ARCHIVE2")->storage_element()->reserved_total(),
            Bytes::zero());
  // RLS registration followed the SE that actually archived the output.
  const auto locs = grid.rls("usatlas")->locate("out0", sim.now());
  ASSERT_FALSE(locs.empty());
  bool at_fallback = false;
  for (const auto& [site, replica] : locs) {
    if (site == "ARCHIVE2" ||
        replica.pfn.find("ARCHIVE2") != std::string::npos) {
      at_fallback = true;
    }
  }
  EXPECT_TRUE(at_fallback);
  // The hop is visible on the MetricBus and in ACDC accounting.
  EXPECT_FALSE(grid.igoc()
                   .bus()
                   .series("usatlas", metric::kLeaseFallthroughs)
                   .empty());
  const monitoring::MdViewer viewer{grid.igoc().job_db(),
                                    grid.igoc().bus()};
  EXPECT_GT(viewer.lease_fallthrough_hops(Time::zero(), sim.now()), 0u);
}

/// Chain fabric with a short broker max-hold, for whole-chain-full cases.
class ShortHoldChainFixture : public ChainPlacementFixture {
 protected:
  void SetUp() override {
    broker::BrokerConfig cfg;
    cfg.hold.deadline = Time::hours(2);
    setup_chain(cfg);
  }
};

TEST_F(ShortHoldChainFixture, WholeChainFullHoldsAtMatchTime) {
  // Both SEs full forever: the refusal surfaces as a match-time hold
  // and a disk-full classification -- never a wasted execution.
  grid.site("ARCHIVE")->disk().consume_unmanaged(Bytes::gb(3));
  grid.site("ARCHIVE2")->disk().consume_unmanaged(Bytes::gb(10));
  run_one({"ARCHIVE2"});
  sim.run_until(sim.now() + Time::days(3));
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->success);
  const workflow::NodeResult& r = stats->node_results[0];
  EXPECT_EQ(r.gram_status, gram::GramStatus::kDiskFull);
  EXPECT_EQ(r.failure_class, "disk-full");
  PlacementLedger* ledger = grid.placement("usatlas");
  EXPECT_GT(ledger->rejected(), 0u);
  EXPECT_EQ(ledger->active(), 0u);
  EXPECT_EQ(grid.site("ALPHA")->gatekeeper().submissions(), 0u);
}

TEST_F(ShortHoldChainFixture, FallbackFreesBeforeHoldExpires) {
  // Primary full forever, fallback full for one hour: the held match
  // re-acquires down the chain once ARCHIVE2 drains.
  grid.site("ARCHIVE")->disk().consume_unmanaged(Bytes::gb(3));
  srm::DiskVolume& d2 = grid.site("ARCHIVE2")->disk();
  d2.consume_unmanaged(Bytes::mb(9800));
  sim.schedule_in(Time::hours(1), [&] { d2.cleanup(Bytes::mb(9800)); });
  run_one({"ARCHIVE2"});
  sim.run_until(sim.now() + Time::days(1));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);
  PlacementLedger* ledger = grid.placement("usatlas");
  EXPECT_GT(ledger->rejected(), 0u);  // the hold happened
  EXPECT_EQ(ledger->consumed(), 1u);  // then the chain resolved
  EXPECT_GE(d2.used(), Bytes::gb(1));
}

TEST_F(ShortHoldPlacementFixture, FullArchiveForeverFailsAsDiskFull) {
  grid.site("ARCHIVE")->disk().consume_unmanaged(Bytes::gb(3));
  run_one();
  sim.run_until(sim.now() + Time::days(3));
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->success);
  // The disk-full class surfaced at match time, attributed correctly.
  const workflow::NodeResult& r = stats->node_results[0];
  EXPECT_EQ(r.gram_status, gram::GramStatus::kDiskFull);
  EXPECT_EQ(r.failure_class, "disk-full");
  PlacementLedger* ledger = grid.placement("usatlas");
  EXPECT_GT(ledger->rejected(), 0u);
  EXPECT_EQ(ledger->active(), 0u);
  EXPECT_EQ(archive_srm().reserved_total(), Bytes::zero());
  // No compute cycles were wasted on a doomed stage-out.
  EXPECT_EQ(grid.site("ALPHA")->gatekeeper().submissions(), 0u);
}

}  // namespace
}  // namespace grid3::placement
