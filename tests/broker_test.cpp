// Unit tests for the resource-broker subsystem: rank policies,
// matchmaking determinism, late-binding re-match/backoff, and the
// per-gatekeeper throttle.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/job_spec.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "pacman/vdt.h"
#include "rls/rls.h"
#include "sim/simulation.h"
#include "workflow/dagman.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace grid3::broker {
namespace {

SiteView make_view(const std::string& site, int free_cpus, int waiting,
                   double gk_load = 0.0) {
  SiteView v;
  v.site = site;
  v.fresh = true;
  v.total_cpus = free_cpus;
  v.free_cpus = free_cpus;
  v.waiting_jobs = waiting;
  v.gatekeeper_load = gk_load;
  return v;
}

TEST(RankPolicy, FavoriteSitesUsesStaticWeights) {
  FavoriteSitesPolicy policy;
  EXPECT_TRUE(policy.stochastic());
  JobSpec job;
  job.site_preference = {{"BNL", 4.5}};
  EXPECT_DOUBLE_EQ(policy.score(job, make_view("BNL", 0, 99), Time::zero()),
                   4.5);
  // Unlisted sites weigh 1, regardless of live state.
  EXPECT_DOUBLE_EQ(policy.score(job, make_view("UC", 64, 0), Time::zero()),
                   1.0);
}

TEST(RankPolicy, QueueDepthPrefersFreeCpusAndShallowQueues) {
  QueueDepthPolicy policy;
  EXPECT_FALSE(policy.stochastic());
  JobSpec job;
  const double idle = policy.score(job, make_view("A", 64, 0), Time::zero());
  const double busy = policy.score(job, make_view("B", 64, 50), Time::zero());
  const double full = policy.score(job, make_view("C", 0, 50), Time::zero());
  EXPECT_GT(idle, busy);
  EXPECT_GT(busy, full);
}

TEST(RankPolicy, DataLocalityBoostsSitesHoldingReplicas) {
  rls::ReplicaLocationService rls{"testvo"};
  rls.register_replica("NEAR", "input.dat",
                       {"gsiftp://NEAR/input.dat", Bytes::gb(1), Time::zero()},
                       Time::zero());
  DataLocalityPolicy policy;
  JobSpec job;
  job.data_inputs = {"input.dat"};
  job.rls = &rls;
  // Identical load: the replica-holding site must win.
  const double near = policy.score(job, make_view("NEAR", 8, 2), Time::zero());
  const double far = policy.score(job, make_view("FAR", 8, 2), Time::zero());
  EXPECT_GT(near, far);
  // Without RLS wiring it degrades to the queue-depth score.
  job.rls = nullptr;
  EXPECT_DOUBLE_EQ(policy.score(job, make_view("NEAR", 8, 2), Time::zero()),
                   far);
}

TEST(RankPolicy, LoadSheddingZeroesOutHotGatekeepers) {
  LoadSheddingPolicy policy{300.0};
  JobSpec job;
  const double cold =
      policy.score(job, make_view("COLD", 8, 0, 0.0), Time::zero());
  const double warm =
      policy.score(job, make_view("WARM", 8, 0, 150.0), Time::zero());
  const double hot =
      policy.score(job, make_view("HOT", 8, 0, 300.0), Time::zero());
  EXPECT_GT(cold, warm);
  EXPECT_GT(warm, hot);
  EXPECT_DOUBLE_EQ(hot, 0.0);
}

TEST(RankPolicy, FactoryCoversEveryKind) {
  EXPECT_EQ(make_policy(PolicyKind::kNone), nullptr);
  for (PolicyKind k :
       {PolicyKind::kFavoriteSites, PolicyKind::kQueueDepth,
        PolicyKind::kDataLocality, PolicyKind::kLoadShedding}) {
    auto p = make_policy(k);
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), to_string(k));
  }
}

/// Two-site fabric with an attached broker (mirrors WorkflowFixture).
class BrokerFixture : public ::testing::Test {
 protected:
  sim::Simulation sim;
  core::Grid3 grid{sim, 77};
  vo::VomsProxy proxy;

  void SetUp() override { setup(PolicyKind::kQueueDepth); }

  void setup(PolicyKind kind, BrokerConfig cfg = {}) {
    grid.add_vo("usatlas");
    grid.attach_broker("usatlas", kind, cfg);
    pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                    Time::minutes(5));
    core::SiteConfig a;
    a.name = "ALPHA";
    a.owner_vo = "usatlas";
    a.cpus = 16;
    a.policy.max_walltime = Time::hours(48);
    a.policy.dedicated = true;
    core::SiteConfig b = a;
    b.name = "BETA";
    b.cpus = 8;
    b.policy.max_walltime = Time::hours(6);
    grid.add_site(a, /*reliability=*/1000.0);
    grid.add_site(b, /*reliability=*/1000.0);
    grid.site("ALPHA")->install_application(grid.igoc().pacman_cache(),
                                            "app");
    grid.site("BETA")->install_application(grid.igoc().pacman_cache(),
                                           "app");
    const vo::Certificate cert =
        grid.add_user("usatlas", "tester", vo::Role::kAppAdmin);
    proxy = *grid.make_proxy(cert, "usatlas", Time::hours(200));
    const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
    grid.site("ALPHA")->refresh_gridmap(servers);
    grid.site("BETA")->refresh_gridmap(servers);
    for (const char* site : {"ALPHA", "BETA"}) {
      grid.site(site)->gatekeeper().set_submission_flake_rate(0.0);
      grid.site(site)->gatekeeper().set_environment_error_rate(0.0);
    }
    grid.start_operations();
    sim.run_until(Time::minutes(1));  // let monitoring publish
  }

  [[nodiscard]] ResourceBroker& broker() { return *grid.broker("usatlas"); }

  [[nodiscard]] JobSpec short_job() const {
    JobSpec spec;
    spec.vo = "usatlas";
    spec.app = "tf";
    spec.required_app = "app";
    spec.runtime = Time::hours(1);
    return spec;
  }

  [[nodiscard]] gram::GramJob gram_job(Time runtime = Time::hours(1)) const {
    gram::GramJob job;
    job.proxy = proxy;
    job.request.vo = proxy.vo;
    job.request.user_dn = proxy.identity.subject_dn;
    job.request.requested_walltime =
        Time::seconds(runtime.to_seconds() * 1.5);
    job.request.actual_runtime = runtime;
    return job;
  }
};

TEST_F(BrokerFixture, ViewJoinsGiisAndMonalisa) {
  const auto& view = broker().view(sim.now());
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0].site, "ALPHA");  // name-sorted
  EXPECT_EQ(view[1].site, "BETA");
  EXPECT_EQ(view[0].total_cpus, 16);
  EXPECT_TRUE(view[0].has_app("app"));
  EXPECT_FALSE(view[0].has_app("ghost"));
}

TEST_F(BrokerFixture, EligibilityMirrorsPlannerRules) {
  JobSpec spec = short_job();
  EXPECT_EQ(broker().eligible(spec, sim.now()).size(), 2u);
  // 20 h * 1.5 slack exceeds BETA's 6-hour queue.
  spec.runtime = Time::hours(20);
  const auto sites = broker().eligible(spec, sim.now());
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], "ALPHA");
  spec.required_app = "ghost";
  EXPECT_TRUE(broker().eligible(spec, sim.now()).empty());
}

TEST_F(BrokerFixture, SubmitRunsJobAndLogsMatch) {
  std::optional<BrokeredResult> result;
  broker().submit(short_job(), gram_job(),
                  [&](const BrokeredResult& r) { result = r; });
  sim.run_until(Time::days(1));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_FALSE(result->site.empty());
  ASSERT_EQ(broker().match_log().size(), 1u);
  EXPECT_EQ(broker().match_log()[0].site, result->site);
  // The decision is mirrored into the iGOC accounting database.
  ASSERT_EQ(grid.igoc().job_db().matches().size(), 1u);
  EXPECT_EQ(grid.igoc().job_db().matches()[0].site, result->site);
}

TEST_F(BrokerFixture, NoEligibleSiteFailsWithoutMatching) {
  JobSpec spec = short_job();
  spec.required_app = "ghost";
  std::optional<BrokeredResult> result;
  broker().submit(spec, gram_job(),
                  [&](const BrokeredResult& r) { result = r; });
  sim.run_until(sim.now() + Time::minutes(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_FALSE(result->matched);
  EXPECT_TRUE(broker().match_log().empty());
}

TEST_F(BrokerFixture, TransientFailureRebindsToAnotherSite) {
  // ALPHA down: the first match fails transiently, the re-match must land
  // on BETA after the backoff.
  grid.site("ALPHA")->gatekeeper().set_available(false);
  JobSpec spec = short_job();
  spec.site_preference = {{"ALPHA", 100.0}};  // irrelevant to queue-depth
  std::optional<BrokeredResult> result;
  broker().submit(spec, gram_job(),
                  [&](const BrokeredResult& r) { result = r; });
  sim.run_until(Time::days(1));
  ASSERT_TRUE(result.has_value());
  if (broker().match_log().front().site == "ALPHA") {
    EXPECT_GE(result->rebinds, 1);
    EXPECT_EQ(broker().match_log().back().site, "BETA");
  }
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->site, "BETA");
}

TEST_F(BrokerFixture, RebindExhaustionReportsLastFailure) {
  grid.site("ALPHA")->gatekeeper().set_available(false);
  grid.site("BETA")->gatekeeper().set_available(false);
  std::optional<BrokeredResult> result;
  broker().submit(short_job(), gram_job(),
                  [&](const BrokeredResult& r) { result = r; });
  sim.run_until(Time::days(2));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(result->matched);
  EXPECT_EQ(result->rebinds, broker().config().rebind.max_retries);
  EXPECT_EQ(result->gram.status, gram::GramStatus::kGatekeeperDown);
}

TEST_F(BrokerFixture, ThrottleHoldsJobsInsteadOfPiling) {
  // A local single-site fabric with a 1-submission-per-site throttle:
  // subsequent jobs must wait inside the broker, not pile onto the
  // gatekeeper.
  sim::Simulation sim2;
  BrokerConfig cfg;
  cfg.max_inflight_per_site = 1;
  core::Grid3 g{sim2, 77};
  g.add_vo("usatlas");
  ResourceBroker& b = g.attach_broker("usatlas", PolicyKind::kQueueDepth, cfg);
  pacman::add_application_package(g.igoc().pacman_cache(), "app",
                                  Time::minutes(5));
  core::SiteConfig a;
  a.name = "ALPHA";
  a.owner_vo = "usatlas";
  a.cpus = 4;
  a.policy.max_walltime = Time::hours(48);
  a.policy.dedicated = true;
  g.add_site(a, /*reliability=*/1000.0);
  g.site("ALPHA")->install_application(g.igoc().pacman_cache(), "app");
  const vo::Certificate cert =
      g.add_user("usatlas", "tester", vo::Role::kAppAdmin);
  const vo::VomsProxy p = *g.make_proxy(cert, "usatlas", Time::hours(200));
  const std::vector<const vo::VomsServer*> servers{g.voms("usatlas")};
  g.site("ALPHA")->refresh_gridmap(servers);
  g.site("ALPHA")->gatekeeper().set_submission_flake_rate(0.0);
  g.start_operations();
  sim2.run_until(Time::minutes(1));

  JobSpec spec;
  spec.vo = "usatlas";
  spec.app = "tf";
  spec.required_app = "app";
  spec.runtime = Time::hours(1);
  auto job = [&] {
    gram::GramJob j;
    j.proxy = p;
    j.request.vo = p.vo;
    j.request.user_dn = p.identity.subject_dn;
    j.request.requested_walltime = Time::hours(2);
    j.request.actual_runtime = Time::hours(1);
    return j;
  };
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    b.submit(spec, job(), [&](const BrokeredResult& r) {
      EXPECT_TRUE(r.ok());
      ++done;
    });
  }
  EXPECT_LE(b.inflight("ALPHA"), 1);
  sim2.run_until(Time::days(2));
  EXPECT_EQ(done, 3);
  EXPECT_GE(b.holds(), 1u);
}

/// Runs one small brokered scenario and returns the serialized match log.
std::string run_match_log(PolicyKind kind, std::uint64_t seed,
                          BrokerConfig cfg = {}) {
  sim::Simulation sim;
  core::Grid3 grid{sim, seed};
  grid.add_vo("usatlas");
  ResourceBroker& broker = grid.attach_broker("usatlas", kind, cfg);
  pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                  Time::minutes(5));
  for (const char* name : {"ALPHA", "BETA"}) {
    core::SiteConfig c;
    c.name = name;
    c.owner_vo = "usatlas";
    c.cpus = 8;
    c.policy.max_walltime = Time::hours(48);
    c.policy.dedicated = true;
    grid.add_site(c, /*reliability=*/1000.0);
    grid.site(name)->install_application(grid.igoc().pacman_cache(), "app");
  }
  const vo::Certificate cert =
      grid.add_user("usatlas", "tester", vo::Role::kAppAdmin);
  const vo::VomsProxy proxy =
      *grid.make_proxy(cert, "usatlas", Time::hours(200));
  const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
  for (const char* name : {"ALPHA", "BETA"}) {
    grid.site(name)->refresh_gridmap(servers);
    grid.site(name)->gatekeeper().set_submission_flake_rate(0.0);
  }
  grid.start_operations();
  sim.run_until(Time::minutes(1));

  JobSpec spec;
  spec.vo = "usatlas";
  spec.app = "tf";
  spec.required_app = "app";
  spec.runtime = Time::hours(1);
  spec.site_preference = {{"ALPHA", 3.0}};
  for (int i = 0; i < 12; ++i) {
    gram::GramJob job;
    job.proxy = proxy;
    job.request.vo = proxy.vo;
    job.request.user_dn = proxy.identity.subject_dn;
    job.request.requested_walltime = Time::hours(2);
    job.request.actual_runtime = Time::hours(1);
    broker.submit(spec, std::move(job), {});
    sim.run_until(sim.now() + Time::minutes(7));
  }
  sim.run_until(Time::days(2));
  return broker.serialize_match_log();
}

TEST(BrokerDeterminism, SameSeedSamePolicyGivesByteIdenticalMatchLogs) {
  for (PolicyKind kind :
       {PolicyKind::kFavoriteSites, PolicyKind::kQueueDepth}) {
    const std::string a = run_match_log(kind, 20031025);
    const std::string b = run_match_log(kind, 20031025);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "policy " << to_string(kind);
  }
}

TEST(BrokerDeterminism, DifferentSeedsDivergeUnderStochasticPolicy) {
  const std::string a = run_match_log(PolicyKind::kFavoriteSites, 1);
  const std::string b = run_match_log(PolicyKind::kFavoriteSites, 2);
  // 12 weighted draws over two sites: collision of the full logs is
  // effectively impossible (and would indicate the seed is ignored).
  EXPECT_NE(a, b);
}

TEST(BrokerDeterminism, IncrementalRankMatchesFullRescoreByteForByte) {
  // The rank cache's core contract: with incremental_rank on, every
  // decision -- including the RNG stream a stochastic policy consumes --
  // is byte-identical to the full per-match rescore.
  for (PolicyKind kind :
       {PolicyKind::kFavoriteSites, PolicyKind::kQueueDepth,
        PolicyKind::kLoadShedding}) {
    BrokerConfig incremental;
    incremental.incremental_rank = true;
    BrokerConfig full;
    full.incremental_rank = false;
    const std::string a = run_match_log(kind, 20031025, incremental);
    const std::string b = run_match_log(kind, 20031025, full);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "policy " << to_string(kind);
  }
}

/// Minimal single-VO fabric for the rank-cache tests: sites are passed
/// in so each test shapes its own tie/lease geometry.
struct RankCacheRig {
  sim::Simulation sim;
  core::Grid3 grid{sim, 77};
  ResourceBroker* broker = nullptr;
  vo::VomsProxy proxy;

  explicit RankCacheRig(const std::vector<core::SiteConfig>& sites,
                        BrokerConfig cfg = {}) {
    grid.add_vo("usatlas");
    broker = &grid.attach_broker("usatlas", PolicyKind::kQueueDepth, cfg);
    pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                    Time::minutes(5));
    const vo::Certificate cert =
        grid.add_user("usatlas", "tester", vo::Role::kAppAdmin);
    proxy = *grid.make_proxy(cert, "usatlas", Time::hours(200));
    for (core::SiteConfig cfg2 : sites) {
      cfg2.owner_vo = "usatlas";
      cfg2.policy.max_walltime = Time::hours(48);
      cfg2.policy.dedicated = true;
      grid.add_site(cfg2, /*reliability=*/1000.0);
      core::Site* site = grid.site(cfg2.name);
      site->install_application(grid.igoc().pacman_cache(), "app");
      site->refresh_gridmap({grid.voms("usatlas")});
      site->gatekeeper().set_submission_flake_rate(0.0);
      site->gatekeeper().set_environment_error_rate(0.0);
    }
    grid.start_operations();
    sim.run_until(Time::minutes(1));  // initial GRIS publications
  }

  [[nodiscard]] static core::SiteConfig compute(const std::string& name,
                                                int cpus) {
    core::SiteConfig c;
    c.name = name;
    c.cpus = cpus;
    return c;
  }

  [[nodiscard]] JobSpec spec() const {
    JobSpec s;
    s.vo = "usatlas";
    s.app = "tf";
    s.required_app = "app";
    s.runtime = Time::hours(1);
    return s;
  }

  [[nodiscard]] gram::GramJob job() const {
    gram::GramJob j;
    j.proxy = proxy;
    j.request.vo = proxy.vo;
    j.request.user_dn = proxy.identity.subject_dn;
    j.request.requested_walltime = Time::hours(2);
    j.request.actual_runtime = Time::hours(1);
    return j;
  }
};

TEST(BrokerRankCache, TiesResolveInNameOrderRegardlessOfCandidateOrder) {
  // Two byte-identical sites: the deterministic argmax must break the
  // score tie toward the name-sorted first site no matter how the
  // spec's candidate list is ordered (the interned bitset replaced a
  // per-site std::find over that list; membership order must stay
  // irrelevant to rank order).
  RankCacheRig rig{{RankCacheRig::compute("ALPHA", 8),
                    RankCacheRig::compute("OMEGA", 8)}};
  JobSpec spec = rig.spec();
  for (const std::vector<std::string>& order :
       {std::vector<std::string>{"OMEGA", "ALPHA"},
        std::vector<std::string>{"ALPHA", "OMEGA"},
        // Duplicate names must not weight the duplicate's site.
        std::vector<std::string>{"OMEGA", "OMEGA", "ALPHA"}}) {
    spec.candidates = order;
    const auto pick = rig.broker->choose(spec, rig.sim.now());
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, "ALPHA");
  }
}

TEST(BrokerRankCache, RepeatPassesHitTheCacheAndDeltaEventsInvalidate) {
  RankCacheRig rig{{RankCacheRig::compute("ALPHA", 16),
                    RankCacheRig::compute("BETA", 8)}};
  ResourceBroker& b = *rig.broker;
  const JobSpec spec = rig.spec();
  const Time now = rig.sim.now();

  // Cold pass scores both sites fresh; a warm repeat is pure hits.
  (void)b.choose(spec, now);
  const std::uint64_t cold_evals = b.rank_evals();
  EXPECT_GE(cold_evals, 2u);
  (void)b.choose(spec, now);
  EXPECT_EQ(b.rank_evals(), cold_evals);
  EXPECT_GE(b.rank_cache_hits(), 2u);

  // A health trip dirties exactly the tripped site: the next pass
  // re-scores it alone and serves the other from the cache.
  b.on_site_quarantined("BETA");
  (void)b.choose(spec, now);
  EXPECT_EQ(b.rank_evals(), cold_evals + 1);

  // Re-admission must also invalidate (the site changed while the
  // cache could not watch it).
  b.on_site_readmitted("BETA");
  (void)b.choose(spec, now);
  EXPECT_EQ(b.rank_evals(), cold_evals + 2);

  // Binding a job consumes a slot the view has not seen: only the
  // bound site (ALPHA, the deeper free pool) re-scores.
  b.submit(spec, rig.job(), {});
  const std::uint64_t after_submit = b.rank_evals();
  (void)b.choose(spec, now);
  EXPECT_EQ(b.rank_evals(), after_submit + 1);
  EXPECT_EQ(b.inflight("ALPHA"), 1);
}

TEST(BrokerRankCache, LeaseAcquisitionDirtiesTheResolvedSe) {
  // Three compute sites, one of which (ARCHIVE) also runs a managed SE.
  core::SiteConfig se = RankCacheRig::compute("ARCHIVE", 4);
  se.disk = Bytes::gb(50);
  se.deploy_srm = true;
  RankCacheRig rig{{RankCacheRig::compute("ALPHA", 16),
                    RankCacheRig::compute("BETA", 8), se}};
  ResourceBroker& b = *rig.broker;
  ASSERT_NE(b.placement(), nullptr);
  JobSpec spec = rig.spec();
  spec.stage_out_site = "ARCHIVE";
  spec.stage_out = Bytes::gb(1);

  // Warm all three cached scores.
  (void)b.choose(spec, rig.sim.now());
  (void)b.choose(spec, rig.sim.now());
  const std::uint64_t warm_evals = b.rank_evals();

  // The submission acquires the stage-out lease at ARCHIVE *before*
  // ranking, so its own pass already sees ARCHIVE dirty (one fresh
  // eval) and then dirties ALPHA by binding there.
  b.submit(spec, rig.job(), {});
  EXPECT_EQ(b.rank_evals(), warm_evals + 1);
  (void)b.choose(spec, rig.sim.now());
  EXPECT_EQ(b.rank_evals(), warm_evals + 2);
  EXPECT_EQ(b.inflight("ALPHA"), 1);
}

TEST_F(BrokerFixture, SiteIdsStableAcrossRefreshAndHealthTransitions) {
  // The interned numbering is registration-order-stable: view refreshes,
  // quarantine round-trips, and late growth must never renumber a site
  // (health counters and in-flight maps are keyed by these ids).
  (void)broker().view(sim.now());
  const core::SiteId alpha = broker().site_id("ALPHA");
  const core::SiteId beta = broker().site_id("BETA");
  ASSERT_TRUE(alpha.valid());
  ASSERT_TRUE(beta.valid());
  EXPECT_NE(alpha, beta);
  broker().on_site_quarantined("BETA");
  broker().on_site_readmitted("BETA");
  sim.run_until(sim.now() + Time::minutes(10));  // beyond the view TTL
  (void)broker().view(sim.now());
  EXPECT_EQ(broker().site_id("ALPHA"), alpha);
  EXPECT_EQ(broker().site_id("BETA"), beta);
  // The broker shares the fabric-wide registry, so every subsystem
  // agrees on the numbering.
  EXPECT_EQ(grid.id_registry()->sites.find("ALPHA"), alpha);
}

TEST_F(BrokerFixture, DagManLateBindsThroughBroker) {
  workflow::VirtualDataCatalog vdc;
  vdc.add_transformation({"tf", "1", "app"});
  workflow::Derivation d1;
  d1.id = "s1";
  d1.transformation = "tf";
  d1.outputs = {"mid"};
  d1.runtime = Time::hours(1);
  d1.output_size = Bytes::gb(1);
  workflow::Derivation d2 = d1;
  d2.id = "s2";
  d2.inputs = {"mid"};
  d2.outputs = {"out"};
  vdc.add_derivation(d1);
  vdc.add_derivation(d2);
  const auto dag = vdc.request({"out"});
  ASSERT_TRUE(dag.has_value());

  workflow::PegasusPlanner planner{grid.igoc().top_giis(),
                                   *grid.rls("usatlas")};
  planner.set_broker(&broker());
  workflow::PlannerConfig cfg;
  cfg.vo = "usatlas";
  cfg.archive_site = "ALPHA";
  util::Rng rng{4};
  auto plan = planner.plan(*dag, cfg, rng, sim.now());
  ASSERT_TRUE(plan.has_value());
  // Brokered plans pre-place no movers between compute nodes.
  EXPECT_EQ(plan->count(workflow::NodeType::kStageIn), 0u);
  std::size_t specs = 0;
  for (const auto& n : plan->nodes) {
    if (n.type == workflow::NodeType::kCompute) {
      EXPECT_TRUE(n.broker_spec.has_value());
      ++specs;
    }
  }
  EXPECT_EQ(specs, 2u);

  std::optional<workflow::DagRunStats> stats;
  grid.dagman("usatlas").run(std::move(*plan), proxy,
                             [&](const workflow::DagRunStats& s) {
                               stats = s;
                             });
  sim.run_until(Time::days(2));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);
  // Both compute nodes were matched by the broker...
  EXPECT_GE(broker().matches(), 2u);
  // ...and the placement query sees them.
  const auto placements = grid.igoc().job_db().placements_by_site(
      Time::zero(), sim.now(), "usatlas");
  std::size_t placed = 0;
  for (const auto& [site, n] : placements) placed += n;
  EXPECT_GE(placed, 2u);
}

// --- stale-view brokering through an index outage ----------------------

TEST_F(BrokerFixture, StaleViewServesMatchesThroughAnIndexOutage) {
  broker().view(sim.now());  // prime the last-known-good view
  EXPECT_FALSE(broker().view_stale());
  grid.igoc().top_giis().set_available(false);
  // Outlive the view TTL so the next view() actually consults the
  // (down) index, but stay inside the staleness bound.
  sim.run_until(sim.now() + broker().config().view_ttl + Time::minutes(1));

  // Within the staleness bound the frozen view keeps serving...
  const auto& view = broker().view(sim.now());
  ASSERT_EQ(view.size(), 2u);
  EXPECT_TRUE(broker().view_stale());

  // ...and matches keep landing, flagged and published.
  std::optional<BrokeredResult> result;
  broker().submit(short_job(), gram_job(),
                  [&](const BrokeredResult& r) { result = r; });
  sim.run_until(sim.now() + Time::hours(3));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_GE(broker().stale_matches(), 1u);
  EXPECT_FALSE(
      grid.igoc().bus().series("usatlas", metric::kStaleMatches).empty());
}

TEST_F(BrokerFixture, StaleViewRecoversWhenTheIndexReturns) {
  broker().view(sim.now());
  grid.igoc().top_giis().set_available(false);
  sim.run_until(sim.now() + broker().config().view_ttl + Time::minutes(1));
  broker().view(sim.now());
  EXPECT_TRUE(broker().view_stale());
  grid.igoc().top_giis().set_available(true);
  // No TTL wait: the next view call re-checks and drops the flag.
  const auto& view = broker().view(sim.now());
  ASSERT_EQ(view.size(), 2u);
  EXPECT_FALSE(broker().view_stale());
  EXPECT_EQ(broker().stale_matches(), 0u);
}

TEST_F(BrokerFixture, PastTheStalenessBoundJobsHoldInsteadOfFailing) {
  broker().view(sim.now());
  grid.igoc().top_giis().set_available(false);
  // Outlive the bound: the frozen view is no longer trusted.
  sim.run_until(sim.now() + broker().config().stale_view_max +
                Time::minutes(1));
  EXPECT_TRUE(broker().view(sim.now()).empty());
  EXPECT_TRUE(broker().view_outage());
  EXPECT_FALSE(broker().view_stale());

  // Defer, not fail: the job rides the hold queue until recovery.
  std::optional<BrokeredResult> result;
  broker().submit(short_job(), gram_job(),
                  [&](const BrokeredResult& r) { result = r; });
  sim.run_until(sim.now() + Time::minutes(20));
  EXPECT_FALSE(result.has_value());
  EXPECT_GE(broker().holds(), 1u);
  grid.igoc().top_giis().set_available(true);
  sim.run_until(sim.now() + Time::hours(3));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_GE(result->holds, 1);
  EXPECT_FALSE(broker().view_outage());
}

TEST_F(BrokerFixture, ZeroStalenessBoundKeepsLegacyRejectSemantics) {
  // stale_view_max == 0 disables the freeze: an index outage empties
  // the view and submissions fail permanently, the pre-journal status
  // quo the ablation bench measures against.
  sim::Simulation sim2;
  core::Grid3 g{sim2, 77};
  g.add_vo("usatlas");
  BrokerConfig cfg;
  cfg.stale_view_max = Time::zero();
  ResourceBroker& b = g.attach_broker("usatlas", PolicyKind::kQueueDepth, cfg);
  pacman::add_application_package(g.igoc().pacman_cache(), "app",
                                  Time::minutes(5));
  core::SiteConfig a;
  a.name = "ALPHA";
  a.owner_vo = "usatlas";
  a.cpus = 4;
  a.policy.max_walltime = Time::hours(48);
  a.policy.dedicated = true;
  g.add_site(a, /*reliability=*/1000.0);
  g.site("ALPHA")->install_application(g.igoc().pacman_cache(), "app");
  const vo::Certificate cert =
      g.add_user("usatlas", "tester", vo::Role::kAppAdmin);
  const vo::VomsProxy p = *g.make_proxy(cert, "usatlas", Time::hours(200));
  const std::vector<const vo::VomsServer*> servers{g.voms("usatlas")};
  g.site("ALPHA")->refresh_gridmap(servers);
  g.start_operations();
  sim2.run_until(Time::minutes(1));

  b.view(sim2.now());
  g.igoc().top_giis().set_available(false);
  sim2.run_until(sim2.now() + cfg.view_ttl + Time::minutes(1));
  EXPECT_TRUE(b.view(sim2.now()).empty());
  EXPECT_FALSE(b.view_outage());  // the degraded machinery stays off

  JobSpec spec;
  spec.vo = "usatlas";
  spec.app = "tf";
  spec.required_app = "app";
  spec.runtime = Time::hours(1);
  gram::GramJob job;
  job.proxy = p;
  job.request.vo = p.vo;
  job.request.user_dn = p.identity.subject_dn;
  job.request.requested_walltime = Time::hours(2);
  job.request.actual_runtime = Time::hours(1);
  std::optional<BrokeredResult> result;
  b.submit(spec, std::move(job),
           [&](const BrokeredResult& r) { result = r; });
  sim2.run_until(sim2.now() + Time::minutes(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_FALSE(result->matched);
  EXPECT_EQ(b.stale_matches(), 0u);
}

}  // namespace
}  // namespace grid3::broker
