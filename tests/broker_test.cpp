// Unit tests for the resource-broker subsystem: rank policies,
// matchmaking determinism, late-binding re-match/backoff, and the
// per-gatekeeper throttle.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/job_spec.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "pacman/vdt.h"
#include "rls/rls.h"
#include "sim/simulation.h"
#include "workflow/dagman.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace grid3::broker {
namespace {

SiteView make_view(const std::string& site, int free_cpus, int waiting,
                   double gk_load = 0.0) {
  SiteView v;
  v.site = site;
  v.fresh = true;
  v.total_cpus = free_cpus;
  v.free_cpus = free_cpus;
  v.waiting_jobs = waiting;
  v.gatekeeper_load = gk_load;
  return v;
}

TEST(RankPolicy, FavoriteSitesUsesStaticWeights) {
  FavoriteSitesPolicy policy;
  EXPECT_TRUE(policy.stochastic());
  JobSpec job;
  job.site_preference = {{"BNL", 4.5}};
  EXPECT_DOUBLE_EQ(policy.score(job, make_view("BNL", 0, 99), Time::zero()),
                   4.5);
  // Unlisted sites weigh 1, regardless of live state.
  EXPECT_DOUBLE_EQ(policy.score(job, make_view("UC", 64, 0), Time::zero()),
                   1.0);
}

TEST(RankPolicy, QueueDepthPrefersFreeCpusAndShallowQueues) {
  QueueDepthPolicy policy;
  EXPECT_FALSE(policy.stochastic());
  JobSpec job;
  const double idle = policy.score(job, make_view("A", 64, 0), Time::zero());
  const double busy = policy.score(job, make_view("B", 64, 50), Time::zero());
  const double full = policy.score(job, make_view("C", 0, 50), Time::zero());
  EXPECT_GT(idle, busy);
  EXPECT_GT(busy, full);
}

TEST(RankPolicy, DataLocalityBoostsSitesHoldingReplicas) {
  rls::ReplicaLocationService rls{"testvo"};
  rls.register_replica("NEAR", "input.dat",
                       {"gsiftp://NEAR/input.dat", Bytes::gb(1), Time::zero()},
                       Time::zero());
  DataLocalityPolicy policy;
  JobSpec job;
  job.data_inputs = {"input.dat"};
  job.rls = &rls;
  // Identical load: the replica-holding site must win.
  const double near = policy.score(job, make_view("NEAR", 8, 2), Time::zero());
  const double far = policy.score(job, make_view("FAR", 8, 2), Time::zero());
  EXPECT_GT(near, far);
  // Without RLS wiring it degrades to the queue-depth score.
  job.rls = nullptr;
  EXPECT_DOUBLE_EQ(policy.score(job, make_view("NEAR", 8, 2), Time::zero()),
                   far);
}

TEST(RankPolicy, LoadSheddingZeroesOutHotGatekeepers) {
  LoadSheddingPolicy policy{300.0};
  JobSpec job;
  const double cold =
      policy.score(job, make_view("COLD", 8, 0, 0.0), Time::zero());
  const double warm =
      policy.score(job, make_view("WARM", 8, 0, 150.0), Time::zero());
  const double hot =
      policy.score(job, make_view("HOT", 8, 0, 300.0), Time::zero());
  EXPECT_GT(cold, warm);
  EXPECT_GT(warm, hot);
  EXPECT_DOUBLE_EQ(hot, 0.0);
}

TEST(RankPolicy, FactoryCoversEveryKind) {
  EXPECT_EQ(make_policy(PolicyKind::kNone), nullptr);
  for (PolicyKind k :
       {PolicyKind::kFavoriteSites, PolicyKind::kQueueDepth,
        PolicyKind::kDataLocality, PolicyKind::kLoadShedding}) {
    auto p = make_policy(k);
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), to_string(k));
  }
}

/// Two-site fabric with an attached broker (mirrors WorkflowFixture).
class BrokerFixture : public ::testing::Test {
 protected:
  sim::Simulation sim;
  core::Grid3 grid{sim, 77};
  vo::VomsProxy proxy;

  void SetUp() override { setup(PolicyKind::kQueueDepth); }

  void setup(PolicyKind kind, BrokerConfig cfg = {}) {
    grid.add_vo("usatlas");
    grid.attach_broker("usatlas", kind, cfg);
    pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                    Time::minutes(5));
    core::SiteConfig a;
    a.name = "ALPHA";
    a.owner_vo = "usatlas";
    a.cpus = 16;
    a.policy.max_walltime = Time::hours(48);
    a.policy.dedicated = true;
    core::SiteConfig b = a;
    b.name = "BETA";
    b.cpus = 8;
    b.policy.max_walltime = Time::hours(6);
    grid.add_site(a, /*reliability=*/1000.0);
    grid.add_site(b, /*reliability=*/1000.0);
    grid.site("ALPHA")->install_application(grid.igoc().pacman_cache(),
                                            "app");
    grid.site("BETA")->install_application(grid.igoc().pacman_cache(),
                                           "app");
    const vo::Certificate cert =
        grid.add_user("usatlas", "tester", vo::Role::kAppAdmin);
    proxy = *grid.make_proxy(cert, "usatlas", Time::hours(200));
    const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
    grid.site("ALPHA")->refresh_gridmap(servers);
    grid.site("BETA")->refresh_gridmap(servers);
    for (const char* site : {"ALPHA", "BETA"}) {
      grid.site(site)->gatekeeper().set_submission_flake_rate(0.0);
      grid.site(site)->gatekeeper().set_environment_error_rate(0.0);
    }
    grid.start_operations();
    sim.run_until(Time::minutes(1));  // let monitoring publish
  }

  [[nodiscard]] ResourceBroker& broker() { return *grid.broker("usatlas"); }

  [[nodiscard]] JobSpec short_job() const {
    JobSpec spec;
    spec.vo = "usatlas";
    spec.app = "tf";
    spec.required_app = "app";
    spec.runtime = Time::hours(1);
    return spec;
  }

  [[nodiscard]] gram::GramJob gram_job(Time runtime = Time::hours(1)) const {
    gram::GramJob job;
    job.proxy = proxy;
    job.request.vo = proxy.vo;
    job.request.user_dn = proxy.identity.subject_dn;
    job.request.requested_walltime =
        Time::seconds(runtime.to_seconds() * 1.5);
    job.request.actual_runtime = runtime;
    return job;
  }
};

TEST_F(BrokerFixture, ViewJoinsGiisAndMonalisa) {
  const auto& view = broker().view(sim.now());
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0].site, "ALPHA");  // name-sorted
  EXPECT_EQ(view[1].site, "BETA");
  EXPECT_EQ(view[0].total_cpus, 16);
  EXPECT_TRUE(view[0].has_app("app"));
  EXPECT_FALSE(view[0].has_app("ghost"));
}

TEST_F(BrokerFixture, EligibilityMirrorsPlannerRules) {
  JobSpec spec = short_job();
  EXPECT_EQ(broker().eligible(spec, sim.now()).size(), 2u);
  // 20 h * 1.5 slack exceeds BETA's 6-hour queue.
  spec.runtime = Time::hours(20);
  const auto sites = broker().eligible(spec, sim.now());
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], "ALPHA");
  spec.required_app = "ghost";
  EXPECT_TRUE(broker().eligible(spec, sim.now()).empty());
}

TEST_F(BrokerFixture, SubmitRunsJobAndLogsMatch) {
  std::optional<BrokeredResult> result;
  broker().submit(short_job(), gram_job(),
                  [&](const BrokeredResult& r) { result = r; });
  sim.run_until(Time::days(1));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_FALSE(result->site.empty());
  ASSERT_EQ(broker().match_log().size(), 1u);
  EXPECT_EQ(broker().match_log()[0].site, result->site);
  // The decision is mirrored into the iGOC accounting database.
  ASSERT_EQ(grid.igoc().job_db().matches().size(), 1u);
  EXPECT_EQ(grid.igoc().job_db().matches()[0].site, result->site);
}

TEST_F(BrokerFixture, NoEligibleSiteFailsWithoutMatching) {
  JobSpec spec = short_job();
  spec.required_app = "ghost";
  std::optional<BrokeredResult> result;
  broker().submit(spec, gram_job(),
                  [&](const BrokeredResult& r) { result = r; });
  sim.run_until(sim.now() + Time::minutes(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_FALSE(result->matched);
  EXPECT_TRUE(broker().match_log().empty());
}

TEST_F(BrokerFixture, TransientFailureRebindsToAnotherSite) {
  // ALPHA down: the first match fails transiently, the re-match must land
  // on BETA after the backoff.
  grid.site("ALPHA")->gatekeeper().set_available(false);
  JobSpec spec = short_job();
  spec.site_preference = {{"ALPHA", 100.0}};  // irrelevant to queue-depth
  std::optional<BrokeredResult> result;
  broker().submit(spec, gram_job(),
                  [&](const BrokeredResult& r) { result = r; });
  sim.run_until(Time::days(1));
  ASSERT_TRUE(result.has_value());
  if (broker().match_log().front().site == "ALPHA") {
    EXPECT_GE(result->rebinds, 1);
    EXPECT_EQ(broker().match_log().back().site, "BETA");
  }
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->site, "BETA");
}

TEST_F(BrokerFixture, RebindExhaustionReportsLastFailure) {
  grid.site("ALPHA")->gatekeeper().set_available(false);
  grid.site("BETA")->gatekeeper().set_available(false);
  std::optional<BrokeredResult> result;
  broker().submit(short_job(), gram_job(),
                  [&](const BrokeredResult& r) { result = r; });
  sim.run_until(Time::days(2));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(result->matched);
  EXPECT_EQ(result->rebinds, broker().config().max_rebinds);
  EXPECT_EQ(result->gram.status, gram::GramStatus::kGatekeeperDown);
}

TEST_F(BrokerFixture, ThrottleHoldsJobsInsteadOfPiling) {
  // A local single-site fabric with a 1-submission-per-site throttle:
  // subsequent jobs must wait inside the broker, not pile onto the
  // gatekeeper.
  sim::Simulation sim2;
  BrokerConfig cfg;
  cfg.max_inflight_per_site = 1;
  core::Grid3 g{sim2, 77};
  g.add_vo("usatlas");
  ResourceBroker& b = g.attach_broker("usatlas", PolicyKind::kQueueDepth, cfg);
  pacman::add_application_package(g.igoc().pacman_cache(), "app",
                                  Time::minutes(5));
  core::SiteConfig a;
  a.name = "ALPHA";
  a.owner_vo = "usatlas";
  a.cpus = 4;
  a.policy.max_walltime = Time::hours(48);
  a.policy.dedicated = true;
  g.add_site(a, /*reliability=*/1000.0);
  g.site("ALPHA")->install_application(g.igoc().pacman_cache(), "app");
  const vo::Certificate cert =
      g.add_user("usatlas", "tester", vo::Role::kAppAdmin);
  const vo::VomsProxy p = *g.make_proxy(cert, "usatlas", Time::hours(200));
  const std::vector<const vo::VomsServer*> servers{g.voms("usatlas")};
  g.site("ALPHA")->refresh_gridmap(servers);
  g.site("ALPHA")->gatekeeper().set_submission_flake_rate(0.0);
  g.start_operations();
  sim2.run_until(Time::minutes(1));

  JobSpec spec;
  spec.vo = "usatlas";
  spec.app = "tf";
  spec.required_app = "app";
  spec.runtime = Time::hours(1);
  auto job = [&] {
    gram::GramJob j;
    j.proxy = p;
    j.request.vo = p.vo;
    j.request.user_dn = p.identity.subject_dn;
    j.request.requested_walltime = Time::hours(2);
    j.request.actual_runtime = Time::hours(1);
    return j;
  };
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    b.submit(spec, job(), [&](const BrokeredResult& r) {
      EXPECT_TRUE(r.ok());
      ++done;
    });
  }
  EXPECT_LE(b.inflight("ALPHA"), 1);
  sim2.run_until(Time::days(2));
  EXPECT_EQ(done, 3);
  EXPECT_GE(b.holds(), 1u);
}

/// Runs one small brokered scenario and returns the serialized match log.
std::string run_match_log(PolicyKind kind, std::uint64_t seed) {
  sim::Simulation sim;
  core::Grid3 grid{sim, seed};
  grid.add_vo("usatlas");
  ResourceBroker& broker = grid.attach_broker("usatlas", kind);
  pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                  Time::minutes(5));
  for (const char* name : {"ALPHA", "BETA"}) {
    core::SiteConfig c;
    c.name = name;
    c.owner_vo = "usatlas";
    c.cpus = 8;
    c.policy.max_walltime = Time::hours(48);
    c.policy.dedicated = true;
    grid.add_site(c, /*reliability=*/1000.0);
    grid.site(name)->install_application(grid.igoc().pacman_cache(), "app");
  }
  const vo::Certificate cert =
      grid.add_user("usatlas", "tester", vo::Role::kAppAdmin);
  const vo::VomsProxy proxy =
      *grid.make_proxy(cert, "usatlas", Time::hours(200));
  const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
  for (const char* name : {"ALPHA", "BETA"}) {
    grid.site(name)->refresh_gridmap(servers);
    grid.site(name)->gatekeeper().set_submission_flake_rate(0.0);
  }
  grid.start_operations();
  sim.run_until(Time::minutes(1));

  JobSpec spec;
  spec.vo = "usatlas";
  spec.app = "tf";
  spec.required_app = "app";
  spec.runtime = Time::hours(1);
  spec.site_preference = {{"ALPHA", 3.0}};
  for (int i = 0; i < 12; ++i) {
    gram::GramJob job;
    job.proxy = proxy;
    job.request.vo = proxy.vo;
    job.request.user_dn = proxy.identity.subject_dn;
    job.request.requested_walltime = Time::hours(2);
    job.request.actual_runtime = Time::hours(1);
    broker.submit(spec, std::move(job), {});
    sim.run_until(sim.now() + Time::minutes(7));
  }
  sim.run_until(Time::days(2));
  return broker.serialize_match_log();
}

TEST(BrokerDeterminism, SameSeedSamePolicyGivesByteIdenticalMatchLogs) {
  for (PolicyKind kind :
       {PolicyKind::kFavoriteSites, PolicyKind::kQueueDepth}) {
    const std::string a = run_match_log(kind, 20031025);
    const std::string b = run_match_log(kind, 20031025);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "policy " << to_string(kind);
  }
}

TEST(BrokerDeterminism, DifferentSeedsDivergeUnderStochasticPolicy) {
  const std::string a = run_match_log(PolicyKind::kFavoriteSites, 1);
  const std::string b = run_match_log(PolicyKind::kFavoriteSites, 2);
  // 12 weighted draws over two sites: collision of the full logs is
  // effectively impossible (and would indicate the seed is ignored).
  EXPECT_NE(a, b);
}

TEST_F(BrokerFixture, DagManLateBindsThroughBroker) {
  workflow::VirtualDataCatalog vdc;
  vdc.add_transformation({"tf", "1", "app"});
  workflow::Derivation d1;
  d1.id = "s1";
  d1.transformation = "tf";
  d1.outputs = {"mid"};
  d1.runtime = Time::hours(1);
  d1.output_size = Bytes::gb(1);
  workflow::Derivation d2 = d1;
  d2.id = "s2";
  d2.inputs = {"mid"};
  d2.outputs = {"out"};
  vdc.add_derivation(d1);
  vdc.add_derivation(d2);
  const auto dag = vdc.request({"out"});
  ASSERT_TRUE(dag.has_value());

  workflow::PegasusPlanner planner{grid.igoc().top_giis(),
                                   *grid.rls("usatlas")};
  planner.set_broker(&broker());
  workflow::PlannerConfig cfg;
  cfg.vo = "usatlas";
  cfg.archive_site = "ALPHA";
  util::Rng rng{4};
  auto plan = planner.plan(*dag, cfg, rng, sim.now());
  ASSERT_TRUE(plan.has_value());
  // Brokered plans pre-place no movers between compute nodes.
  EXPECT_EQ(plan->count(workflow::NodeType::kStageIn), 0u);
  std::size_t specs = 0;
  for (const auto& n : plan->nodes) {
    if (n.type == workflow::NodeType::kCompute) {
      EXPECT_TRUE(n.broker_spec.has_value());
      ++specs;
    }
  }
  EXPECT_EQ(specs, 2u);

  std::optional<workflow::DagRunStats> stats;
  grid.dagman("usatlas").run(std::move(*plan), proxy,
                             [&](const workflow::DagRunStats& s) {
                               stats = s;
                             });
  sim.run_until(Time::days(2));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);
  // Both compute nodes were matched by the broker...
  EXPECT_GE(broker().matches(), 2u);
  // ...and the placement query sees them.
  const auto placements = grid.igoc().job_db().placements_by_site(
      Time::zero(), sim.now(), "usatlas");
  std::size_t placed = 0;
  for (const auto& [site, n] : placements) placed += n;
  EXPECT_GE(placed, 2u);
}

}  // namespace
}  // namespace grid3::broker
