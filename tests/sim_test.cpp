// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace grid3::sim {
namespace {

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(Time::seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(Time::seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(Time::seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time::seconds(3));
}

TEST(Simulation, SameInstantFiresInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(Time::seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  Time fired;
  sim.schedule_at(Time::seconds(5), [&] {
    sim.schedule_in(Time::seconds(10), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, Time::seconds(15));
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(Time::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(sim.cancel(id + 100));  // unknown id
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(Time::seconds(1), [&] { ++count; });
  sim.schedule_at(Time::seconds(2), [&] { ++count; });
  sim.schedule_at(Time::seconds(3), [&] { ++count; });
  sim.run_until(Time::seconds(2));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), Time::seconds(2));
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulation, RunUntilAdvancesClockWithNoEvents) {
  Simulation sim;
  sim.run_until(Time::hours(5));
  EXPECT_EQ(sim.now(), Time::hours(5));
}

TEST(Simulation, EventsScheduledDuringExecutionRun) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(Time::seconds(1), recurse);
  };
  sim.schedule_in(Time::seconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(Simulation, PendingCountsUncancelled) {
  Simulation sim;
  const EventId a = sim.schedule_at(Time::seconds(1), [] {});
  sim.schedule_at(Time::seconds(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(PeriodicProcess, TicksAtInterval) {
  Simulation sim;
  PeriodicProcess proc{sim, Time::minutes(10), [] { return true; }};
  proc.start();
  sim.run_until(Time::minutes(35));
  EXPECT_EQ(proc.ticks(), 4u);  // fires at t = 0, 10, 20, 30
  proc.stop();
  sim.run_until(Time::hours(2));
  EXPECT_EQ(proc.ticks(), 4u);
}

TEST(PeriodicProcess, StopsWhenTickReturnsFalse) {
  Simulation sim;
  int ticks = 0;
  PeriodicProcess proc{sim, Time::seconds(1), [&] {
                         ++ticks;
                         return ticks < 3;
                       }};
  proc.start(Time::seconds(1));
  sim.run();
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(proc.running());
}

TEST(PeriodicProcess, InitialDelayRespected) {
  Simulation sim;
  Time first;
  PeriodicProcess proc{sim, Time::minutes(5), [&] {
                         if (first == Time::zero()) first = sim.now();
                         return false;
                       }};
  proc.start(Time::minutes(2));
  sim.run();
  EXPECT_EQ(first, Time::minutes(2));
}

TEST(PeriodicProcess, DestructorCancelsCleanly) {
  Simulation sim;
  {
    PeriodicProcess proc{sim, Time::seconds(1), [] { return true; }};
    proc.start();
  }
  sim.run_until(Time::seconds(10));  // must not crash / fire
  EXPECT_EQ(sim.executed(), 0u);
}

}  // namespace
}  // namespace grid3::sim
