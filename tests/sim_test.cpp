// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace grid3::sim {
namespace {

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(Time::seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(Time::seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(Time::seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time::seconds(3));
}

TEST(Simulation, SameInstantFiresInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(Time::seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  Time fired;
  sim.schedule_at(Time::seconds(5), [&] {
    sim.schedule_in(Time::seconds(10), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, Time::seconds(15));
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(Time::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(sim.cancel(id + 100));  // unknown id
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(Time::seconds(1), [&] { ++count; });
  sim.schedule_at(Time::seconds(2), [&] { ++count; });
  sim.schedule_at(Time::seconds(3), [&] { ++count; });
  sim.run_until(Time::seconds(2));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), Time::seconds(2));
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulation, RunUntilAdvancesClockWithNoEvents) {
  Simulation sim;
  sim.run_until(Time::hours(5));
  EXPECT_EQ(sim.now(), Time::hours(5));
}

TEST(Simulation, EventsScheduledDuringExecutionRun) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(Time::seconds(1), recurse);
  };
  sim.schedule_in(Time::seconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(Simulation, PendingCountsUncancelled) {
  Simulation sim;
  const EventId a = sim.schedule_at(Time::seconds(1), [] {});
  sim.schedule_at(Time::seconds(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulation, CancelRefusesAlreadyFiredIds) {
  Simulation sim;
  const EventId id = sim.schedule_at(Time::seconds(1), [] {});
  sim.run();
  // The id is gone from the live set; cancelling it must not park a
  // tombstone in the cancelled set.
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.cancel_backlog(), 0u);
}

TEST(Simulation, CancelBacklogStaysBoundedByPending) {
  // A long campaign of schedule+cancel churn: the cancelled set must
  // track only still-pending entries (O(pending) bookkeeping), never
  // accumulate ids that have already been popped or settled out.
  Simulation sim;
  for (int round = 0; round < 100; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 10; ++i) {
      ids.push_back(sim.schedule_in(Time::seconds(1), [] {}));
    }
    for (size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    EXPECT_LE(sim.cancel_backlog(), sim.pending() + 5u);  // the 5 cancelled
    sim.run();
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_EQ(sim.cancel_backlog(), 0u);  // drained with the queue
  }
  EXPECT_EQ(sim.executed(), 500u);
}

TEST(Simulation, RunUntilStopsAtHorizonWhenFrontIsCancelled) {
  // A cancelled entry sitting on the heap front past the horizon must
  // not drag the clock beyond `t`.
  Simulation sim;
  const EventId late = sim.schedule_at(Time::seconds(10), [] {});
  sim.cancel(late);
  sim.run_until(Time::seconds(5));
  EXPECT_EQ(sim.now(), Time::seconds(5));
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(Simulation, EventExactlyAtHorizonFires) {
  Simulation sim;
  bool at_horizon = false;
  bool past_horizon = false;
  sim.schedule_at(Time::seconds(5), [&] { at_horizon = true; });
  sim.schedule_at(Time::seconds(5) + Time::micros(1),
                  [&] { past_horizon = true; });
  sim.run_until(Time::seconds(5));
  EXPECT_TRUE(at_horizon);
  EXPECT_FALSE(past_horizon);
  EXPECT_EQ(sim.now(), Time::seconds(5));
}

TEST(Simulation, CancelDuringCallbackStopsSameInstantSibling) {
  // An event cancelling its same-timestamp sibling from inside its own
  // callback: the sibling is already in the queue at the front instant
  // and must not fire.
  Simulation sim;
  bool sibling_fired = false;
  EventId sibling = 0;
  sim.schedule_at(Time::seconds(1), [&] { sim.cancel(sibling); });
  sibling = sim.schedule_at(Time::seconds(1), [&] { sibling_fired = true; });
  sim.run();
  EXPECT_FALSE(sibling_fired);
  EXPECT_EQ(sim.executed(), 1u);
  EXPECT_EQ(sim.cancel_backlog(), 0u);
}

TEST(Simulation, EnumerateReadyListsFrontInstantSortedById) {
  Simulation sim;
  const EventId a = sim.schedule_at(Time::seconds(1), [] {});
  const EventId b = sim.schedule_at(Time::seconds(1), [] {});
  sim.schedule_at(Time::seconds(2), [] {});  // not at the front instant
  const EventId d = sim.schedule_at(Time::seconds(1), [] {});
  sim.cancel(d);  // cancelled events are not ready

  ASSERT_TRUE(sim.next_time().has_value());
  EXPECT_EQ(*sim.next_time(), Time::seconds(1));
  const auto ready = sim.enumerate_ready();
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].id, a);
  EXPECT_EQ(ready[1].id, b);
  EXPECT_LT(ready[0].id, ready[1].id);
}

TEST(Simulation, StepEventPermutesOnlyTheFrontInstant) {
  Simulation sim;
  std::vector<int> order;
  const EventId a = sim.schedule_at(Time::seconds(1), [&] { order.push_back(0); });
  const EventId b = sim.schedule_at(Time::seconds(1), [&] { order.push_back(1); });
  const EventId later = sim.schedule_at(Time::seconds(2), [&] { order.push_back(2); });

  EXPECT_FALSE(sim.step_event(later));     // not at next_time(): refused
  EXPECT_FALSE(sim.step_event(99999));     // unknown id: refused
  EXPECT_TRUE(sim.step_event(b));          // permuted ahead of a
  EXPECT_TRUE(sim.step_event(a));
  EXPECT_FALSE(sim.step_event(a));         // already fired
  EXPECT_TRUE(sim.step_event(later));      // now at the front
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
  EXPECT_EQ(sim.now(), Time::seconds(2));
}

TEST(Simulation, StepEventKeepsSameActorScheduleOrderStable) {
  // The checker only ever fires the lowest-id head per actor, so firing
  // front events in id order must reproduce exactly what step() does.
  Simulation a_sim;
  Simulation b_sim;
  std::vector<int> via_step;
  std::vector<int> via_step_event;
  const auto seed = [](Simulation& s, std::vector<int>& order) {
    for (int i = 0; i < 5; ++i) {
      s.schedule_at(Time::seconds(1), [&order, i] { order.push_back(i); });
    }
  };
  seed(a_sim, via_step);
  seed(b_sim, via_step_event);
  a_sim.run();
  while (b_sim.next_time().has_value()) {
    const auto ready = b_sim.enumerate_ready();
    ASSERT_FALSE(ready.empty());
    EXPECT_TRUE(b_sim.step_event(ready.front().id));  // lowest id first
  }
  EXPECT_EQ(via_step, via_step_event);
}

TEST(Simulation, ScopedTagReplaceAndAppend) {
  Simulation sim;
  std::string inherited;
  {
    Simulation::ScopedTag actor{sim, "job:J"};
    EXPECT_EQ(sim.current_tag(), "job:J");
    {
      Simulation::ScopedTag res{sim, "se:ARCHIVE",
                                Simulation::ScopedTag::kAppend};
      EXPECT_EQ(sim.current_tag(), "job:J|se:ARCHIVE");
      sim.schedule_at(Time::seconds(1), [&] {
        // Tag inheritance: events scheduled while this one executes
        // carry its tag without any explicit ScopedTag.
        inherited = sim.current_tag();
        sim.schedule_in(Time::seconds(1), [] {});
      });
    }
    EXPECT_EQ(sim.current_tag(), "job:J");
  }
  EXPECT_EQ(sim.current_tag(), "");

  const auto ready = sim.enumerate_ready();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].tag, "job:J|se:ARCHIVE");
  sim.run_until(Time::seconds(1));
  EXPECT_EQ(inherited, "job:J|se:ARCHIVE");
  const auto child = sim.enumerate_ready();
  ASSERT_EQ(child.size(), 1u);
  EXPECT_EQ(child[0].tag, "job:J|se:ARCHIVE");  // inherited transitively
}

TEST(Simulation, AppendOnEmptyTagReplaces) {
  Simulation sim;
  Simulation::ScopedTag tag{sim, "rb", Simulation::ScopedTag::kAppend};
  // No ambient actor: the append degenerates to a plain tag rather than
  // producing a leading separator.
  EXPECT_EQ(sim.current_tag(), "rb");
}

// --- calendar/bucket queue discipline ---------------------------------

TEST(Calendar, RoutesNearEventsToBucketsFarToHeap) {
  Simulation sim;  // defaults: 2048 buckets x 500 ms = a 1024 s window
  ASSERT_TRUE(sim.queue_config().calendar);
  sim.schedule_at(Time::seconds(100), [] {});   // inside the window
  sim.schedule_at(Time::seconds(2000), [] {});  // beyond it
  EXPECT_EQ(sim.calendar_scheduled(), 1u);
  EXPECT_EQ(sim.heap_scheduled(), 1u);

  QueueConfig heap_only;
  heap_only.calendar = false;
  Simulation h{heap_only};
  h.schedule_at(Time::seconds(100), [] {});
  EXPECT_EQ(h.calendar_scheduled(), 0u);
  EXPECT_EQ(h.heap_scheduled(), 1u);
}

TEST(Calendar, MatchesHeapOrderThroughChurn) {
  // The discipline changes cost, never behavior: a churn of same-instant
  // events, far events, nested reschedules, and cancels must fire in
  // exactly the same (time, id) order under both disciplines.  The LCG
  // stream is consumed inside callbacks, so any ordering divergence
  // snowballs into a different firing log.
  const auto drive = [](QueueConfig cfg) {
    Simulation sim{cfg};
    std::vector<int> order;
    std::uint64_t lcg = 42;
    const auto next = [&lcg](std::uint64_t mod) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      return (lcg >> 33) % mod;
    };
    std::vector<EventId> cancellable;
    for (int i = 0; i < 400; ++i) {
      // Coarse 40 s grid spanning 0..1960 s: plenty of same-instant
      // collisions, and times on both sides of the 1024 s window.
      const Time t = Time::seconds(static_cast<double>(next(50)) * 40.0);
      const EventId id = sim.schedule_at(t, [&sim, &order, &next, i] {
        order.push_back(i);
        if (next(3) == 0) {
          sim.schedule_in(Time::seconds(static_cast<double>(1 + next(2000))),
                          [&order, i] { order.push_back(1000 + i); });
        }
      });
      if (next(4) == 0) cancellable.push_back(id);
    }
    for (const EventId id : cancellable) sim.cancel(id);
    sim.run();
    EXPECT_EQ(sim.cancel_backlog(), 0u);
    return order;
  };
  QueueConfig heap_only;
  heap_only.calendar = false;
  const auto calendar_order = drive(QueueConfig{});
  const auto heap_order = drive(heap_only);
  EXPECT_GT(calendar_order.size(), 100u);
  EXPECT_EQ(calendar_order, heap_order);
}

TEST(Calendar, SameInstantAcrossStoresFiresInIdOrder) {
  Simulation sim;
  std::vector<int> order;
  // Seen from t=0, both 1500 s and 2000 s are beyond the window: heap.
  // The copy scheduled from t=1500 s sees 2000 s inside the window:
  // bucket.
  // Same timestamp, different stores; the heap entry has the lower id
  // and must fire first.
  sim.schedule_at(Time::seconds(2000), [&] { order.push_back(0); });
  sim.schedule_at(Time::seconds(1500), [&] {
    sim.schedule_at(Time::seconds(2000), [&] { order.push_back(1); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(sim.heap_scheduled(), 2u);
  EXPECT_EQ(sim.calendar_scheduled(), 1u);
}

TEST(Calendar, RunUntilBoundaryHoldsAcrossBothStores) {
  Simulation sim;
  bool bucket_fired = false;
  bool heap_fired = false;
  sim.schedule_at(Time::seconds(500), [&] { bucket_fired = true; });
  sim.schedule_at(Time::seconds(5000), [&] { heap_fired = true; });
  EXPECT_EQ(sim.calendar_scheduled(), 1u);
  EXPECT_EQ(sim.heap_scheduled(), 1u);
  sim.run_until(Time::seconds(500));
  EXPECT_TRUE(bucket_fired);
  EXPECT_FALSE(heap_fired);
  EXPECT_EQ(sim.now(), Time::seconds(500));
  sim.run();
  EXPECT_TRUE(heap_fired);
}

TEST(Calendar, CancelBacklogPurgesAcrossRingLaps) {
  // A tiny ring that wraps constantly: tombstones parked in a slot must
  // be purged when the cursor revisits it on a later lap, and draining
  // the queue must always leave the backlog empty.
  QueueConfig cfg;
  cfg.bucket_width = Time::millis(10);
  cfg.buckets = 16;  // 160 ms window
  Simulation sim{cfg};
  std::uint64_t fired = 0;
  for (int lap = 0; lap < 50; ++lap) {
    std::vector<EventId> ids;
    for (int i = 0; i < 8; ++i) {
      ids.push_back(
          sim.schedule_in(Time::millis(5 + 10 * i), [&] { ++fired; }));
    }
    for (size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    EXPECT_LE(sim.cancel_backlog(), sim.pending() + 4u);
    sim.run();
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_EQ(sim.cancel_backlog(), 0u);
  }
  EXPECT_EQ(fired, 50u * 4u);
  EXPECT_GT(sim.calendar_scheduled(), 0u);
}

TEST(Calendar, SteeringHooksSpanBothStores) {
  // enumerate_ready()/step_event() must treat a front instant split
  // across heap and buckets as one ready set, and permute within it.
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(Time::seconds(2000), [&] { order.push_back(0); });
  sim.schedule_at(Time::seconds(1999), [&] {
    sim.schedule_at(Time::seconds(2000), [&] { order.push_back(1); });
  });
  sim.run_until(Time::seconds(1999));
  ASSERT_TRUE(sim.next_time().has_value());
  EXPECT_EQ(*sim.next_time(), Time::seconds(2000));
  const auto ready = sim.enumerate_ready();
  ASSERT_EQ(ready.size(), 2u);  // heap resident + bucket resident
  EXPECT_TRUE(sim.step_event(ready[1].id));  // bucket copy, permuted first
  EXPECT_TRUE(sim.step_event(ready[0].id));
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(PeriodicProcess, TicksAtInterval) {
  Simulation sim;
  PeriodicProcess proc{sim, Time::minutes(10), [] { return true; }};
  proc.start();
  sim.run_until(Time::minutes(35));
  EXPECT_EQ(proc.ticks(), 4u);  // fires at t = 0, 10, 20, 30
  proc.stop();
  sim.run_until(Time::hours(2));
  EXPECT_EQ(proc.ticks(), 4u);
}

TEST(PeriodicProcess, StopsWhenTickReturnsFalse) {
  Simulation sim;
  int ticks = 0;
  PeriodicProcess proc{sim, Time::seconds(1), [&] {
                         ++ticks;
                         return ticks < 3;
                       }};
  proc.start(Time::seconds(1));
  sim.run();
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(proc.running());
}

TEST(PeriodicProcess, InitialDelayRespected) {
  Simulation sim;
  Time first;
  PeriodicProcess proc{sim, Time::minutes(5), [&] {
                         if (first == Time::zero()) first = sim.now();
                         return false;
                       }};
  proc.start(Time::minutes(2));
  sim.run();
  EXPECT_EQ(first, Time::minutes(2));
}

TEST(PeriodicProcess, DestructorCancelsCleanly) {
  Simulation sim;
  {
    PeriodicProcess proc{sim, Time::seconds(1), [] { return true; }};
    proc.start();
  }
  sim.run_until(Time::seconds(10));  // must not crash / fire
  EXPECT_EQ(sim.executed(), 0u);
}

}  // namespace
}  // namespace grid3::sim
