// Unit tests for the workflow layer: virtual data catalog, DAG
// structures, Pegasus planning, DAGMan execution.
#include <gtest/gtest.h>

#include "broker/broker.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "mds/schema.h"
#include "pacman/vdt.h"
#include "sim/simulation.h"
#include "workflow/dag.h"
#include "workflow/dagman.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace grid3::workflow {
namespace {

Derivation make_derivation(const std::string& id,
                           std::vector<std::string> inputs,
                           std::vector<std::string> outputs,
                           double runtime_h = 1.0) {
  Derivation d;
  d.id = id;
  d.transformation = "tf";
  d.inputs = std::move(inputs);
  d.outputs = std::move(outputs);
  d.runtime = Time::hours(runtime_h);
  d.output_size = Bytes::gb(1);
  d.scratch = Bytes::gb(1);
  return d;
}

TEST(Vdc, RequestBuildsTransitiveClosure) {
  VirtualDataCatalog vdc;
  vdc.add_transformation({"tf", "1", "app"});
  vdc.add_derivation(make_derivation("gen", {}, {"raw"}));
  vdc.add_derivation(make_derivation("sim", {"raw"}, {"hits"}));
  vdc.add_derivation(make_derivation("rec", {"hits"}, {"esd"}));
  const auto dag = vdc.request({"esd"});
  ASSERT_TRUE(dag.has_value());
  EXPECT_EQ(dag->jobs.size(), 3u);
  EXPECT_EQ(dag->edges.size(), 2u);
  EXPECT_TRUE(dag->acyclic());
  EXPECT_EQ(dag->roots().size(), 1u);
}

TEST(Vdc, ExternalInputsAreNotJobs) {
  VirtualDataCatalog vdc;
  vdc.add_transformation({"tf", "1", "app"});
  vdc.add_derivation(make_derivation("analyze", {"external-data"}, {"out"}));
  const auto dag = vdc.request({"out"});
  ASSERT_TRUE(dag.has_value());
  EXPECT_EQ(dag->jobs.size(), 1u);
  EXPECT_TRUE(dag->edges.empty());
}

TEST(Vdc, UnknownTargetFails) {
  VirtualDataCatalog vdc;
  EXPECT_FALSE(vdc.request({"nothing"}).has_value());
}

TEST(Vdc, ProducerLookup) {
  VirtualDataCatalog vdc;
  vdc.add_derivation(make_derivation("d1", {}, {"a", "b"}));
  EXPECT_EQ(vdc.producer_of("a")->id, "d1");
  EXPECT_EQ(vdc.producer_of("b")->id, "d1");
  EXPECT_EQ(vdc.producer_of("c"), nullptr);
}

TEST(Dag, CycleDetection) {
  AbstractDag dag;
  dag.jobs.resize(2);
  dag.edges = {{0, 1}, {1, 0}};
  EXPECT_FALSE(dag.acyclic());
}

TEST(Dag, ConcreteNavigation) {
  ConcreteDag dag;
  dag.nodes.resize(3);
  dag.nodes[0].type = NodeType::kCompute;
  dag.nodes[1].type = NodeType::kStageOut;
  dag.nodes[2].type = NodeType::kRegister;
  dag.edges = {{0, 1}, {1, 2}};
  EXPECT_EQ(dag.roots(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(dag.children(0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(dag.parents(2), (std::vector<std::size_t>{1}));
  EXPECT_EQ(dag.count(NodeType::kCompute), 1u);
  EXPECT_TRUE(dag.acyclic());
}

/// Fixture with a two-site fabric for planner/DAGMan tests.
class WorkflowFixture : public ::testing::Test {
 protected:
  sim::Simulation sim;
  core::Grid3 grid{sim, 77};
  vo::Certificate cert;
  vo::VomsProxy proxy;

  void SetUp() override {
    grid.add_vo("usatlas");
    pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                    Time::minutes(5));
    core::SiteConfig a;
    a.name = "ALPHA";
    a.owner_vo = "usatlas";
    a.cpus = 16;
    a.policy.max_walltime = Time::hours(48);
    a.policy.dedicated = true;
    core::SiteConfig b = a;
    b.name = "BETA";
    b.cpus = 8;
    b.policy.max_walltime = Time::hours(6);  // short-queue site
    grid.add_site(a, /*reliability=*/1000.0);
    grid.add_site(b, /*reliability=*/1000.0);
    grid.site("ALPHA")->install_application(grid.igoc().pacman_cache(),
                                            "app");
    grid.site("BETA")->install_application(grid.igoc().pacman_cache(),
                                           "app");
    cert = grid.add_user("usatlas", "tester", vo::Role::kAppAdmin);
    proxy = *grid.make_proxy(cert, "usatlas", Time::hours(200));
    // The user joined after site setup: refresh grid-maps so the
    // gatekeepers know the new DN (sites did this on a cron).
    const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
    grid.site("ALPHA")->refresh_gridmap(servers);
    grid.site("BETA")->refresh_gridmap(servers);
    // Deterministic fixtures: disable stochastic jobmanager flake/error
    // rates (covered by gram/integration tests).
    for (const char* site : {"ALPHA", "BETA"}) {
      grid.site(site)->gatekeeper().set_submission_flake_rate(0.0);
      grid.site(site)->gatekeeper().set_environment_error_rate(0.0);
    }
    // Central loops keep the RLI soft-state fresh across long runs.
    grid.start_operations();
    sim.run_until(Time::minutes(1));  // let monitoring publish
  }

  AbstractDag two_step(double runtime_h = 1.0) {
    VirtualDataCatalog vdc;
    vdc.add_transformation({"tf", "1", "app"});
    vdc.add_derivation(make_derivation("s1", {}, {"mid"}, runtime_h));
    vdc.add_derivation(make_derivation("s2", {"mid"}, {"out"}, runtime_h));
    return *vdc.request({"out"});
  }
};

TEST_F(WorkflowFixture, EligibleSitesRespectAppAndWalltime) {
  PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("usatlas")};
  PlannerConfig cfg;
  cfg.vo = "usatlas";
  // Short job: both sites eligible.
  auto sites = planner.eligible_sites("app", Time::hours(1), cfg, sim.now());
  EXPECT_EQ(sites.size(), 2u);
  // Long job: BETA's 6-hour queue cannot take it.
  sites = planner.eligible_sites("app", Time::hours(20), cfg, sim.now());
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], "ALPHA");
  // Unknown application: nowhere.
  sites = planner.eligible_sites("ghost-app", Time::hours(1), cfg, sim.now());
  EXPECT_TRUE(sites.empty());
}

TEST_F(WorkflowFixture, PlanBindsSitesAndAddsArchiveNodes) {
  PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("usatlas")};
  PlannerConfig cfg;
  cfg.vo = "usatlas";
  cfg.archive_site = "ALPHA";
  util::Rng rng{1};
  const auto dag = two_step();
  const auto plan = planner.plan(dag, cfg, rng, sim.now());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->count(NodeType::kCompute), 2u);
  EXPECT_EQ(plan->count(NodeType::kStageOut), 1u);  // only the final output
  EXPECT_EQ(plan->count(NodeType::kRegister), 1u);
  EXPECT_TRUE(plan->acyclic());
  for (const auto& n : plan->nodes) {
    if (n.type == NodeType::kCompute) {
      EXPECT_TRUE(n.site == "ALPHA" || n.site == "BETA");
      EXPECT_GT(n.requested_walltime, n.runtime);
    }
  }
}

TEST_F(WorkflowFixture, VirtualDataReusePrunesExistingOutputs) {
  grid.rls("usatlas")->register_replica(
      "ALPHA", "out", {"gsiftp://ALPHA/out", Bytes::gb(1), sim.now()},
      sim.now());
  PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("usatlas")};
  PlannerConfig cfg;
  cfg.vo = "usatlas";
  util::Rng rng{2};
  const auto plan = planner.plan(two_step(), cfg, rng, sim.now());
  ASSERT_TRUE(plan.has_value());
  // Everything pruned: output already exists.
  EXPECT_TRUE(plan->nodes.empty());
}

TEST_F(WorkflowFixture, NoEligibleSiteFailsPlanning) {
  PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("usatlas")};
  PlannerConfig cfg;
  cfg.vo = "usatlas";
  util::Rng rng{3};
  const auto plan = planner.plan(two_step(100.0), cfg, rng, sim.now());
  // 100 h * 1.5 slack > ALPHA's 48 h queue -> nowhere to run.
  EXPECT_FALSE(plan.has_value());
  EXPECT_EQ(planner.last_error(), PlanError::kNoEligibleSite);
}

TEST_F(WorkflowFixture, DagManRunsChainToCompletion) {
  PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("usatlas")};
  PlannerConfig cfg;
  cfg.vo = "usatlas";
  cfg.archive_site = "ALPHA";
  util::Rng rng{4};
  auto plan = planner.plan(two_step(), cfg, rng, sim.now());
  ASSERT_TRUE(plan.has_value());

  std::optional<DagRunStats> stats;
  int nodes_seen = 0;
  grid.dagman("usatlas").run(
      std::move(*plan), proxy,
      [&](const DagRunStats& s) { stats = s; },
      [&](const NodeResult&) { ++nodes_seen; });
  sim.run_until(Time::days(2));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);
  EXPECT_EQ(stats->failed, 0u);
  EXPECT_GT(nodes_seen, 0);
  // The archived output is now registered in RLS.
  EXPECT_FALSE(grid.rls("usatlas")->locate("out", sim.now()).empty());
}

TEST_F(WorkflowFixture, EmptyDagSucceedsImmediately) {
  std::optional<DagRunStats> stats;
  grid.dagman("usatlas").run(ConcreteDag{}, proxy,
                             [&](const DagRunStats& s) { stats = s; });
  sim.run_until(Time::minutes(2));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);
  EXPECT_EQ(stats->nodes_total, 0u);
}

TEST_F(WorkflowFixture, FailedNodeSkipsDescendantsAndBuildsRescue) {
  // Bind a compute node to a nonexistent site: permanent failure.
  ConcreteDag dag;
  ConcreteNode bad;
  bad.type = NodeType::kCompute;
  bad.name = "bad";
  bad.site = "GHOST";
  bad.runtime = Time::hours(1);
  bad.requested_walltime = Time::hours(2);
  ConcreteNode child = bad;
  child.name = "child";
  child.site = "ALPHA";
  dag.nodes = {bad, child};
  dag.edges = {{0, 1}};

  std::optional<DagRunStats> stats;
  grid.dagman("usatlas").run(dag, proxy,
                             [&](const DagRunStats& s) { stats = s; });
  sim.run_until(Time::days(1));
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->success);
  EXPECT_EQ(stats->failed, 1u);
  EXPECT_EQ(stats->skipped, 1u);
  EXPECT_EQ(stats->rescue.size(), 2u);
}

TEST_F(WorkflowFixture, RescueDagResumesWhereRunStopped) {
  // A three-node chain whose middle node is bound to a nonexistent site:
  // node 0 completes, 1 fails, 2 is skipped.  The rescue DAG holds only
  // the unfinished tail; re-binding and resubmitting it finishes the work
  // without redoing node 0.
  ConcreteDag dag;
  for (int i = 0; i < 3; ++i) {
    ConcreteNode n;
    n.type = NodeType::kCompute;
    n.name = "n" + std::to_string(i);
    n.site = i == 1 ? "GHOST" : "ALPHA";
    n.runtime = Time::hours(1);
    n.requested_walltime = Time::hours(2);
    dag.nodes.push_back(n);
  }
  dag.edges = {{0, 1}, {1, 2}};

  std::optional<DagRunStats> stats;
  grid.dagman("usatlas").run(dag, proxy,
                             [&](const DagRunStats& s) { stats = s; });
  sim.run_until(sim.now() + Time::days(1));
  ASSERT_TRUE(stats.has_value());
  ASSERT_FALSE(stats->success);
  ASSERT_EQ(stats->rescue.size(), 2u);

  ConcreteDag rescue = DagMan::rescue_dag(dag, *stats);
  ASSERT_EQ(rescue.nodes.size(), 2u);
  EXPECT_EQ(rescue.edges.size(), 1u);  // only the 1->2 edge survives
  EXPECT_TRUE(rescue.acyclic());
  // Fix the bad binding and resubmit.
  for (auto& n : rescue.nodes) n.site = "ALPHA";
  std::optional<DagRunStats> second;
  grid.dagman("usatlas").run(std::move(rescue), proxy,
                             [&](const DagRunStats& s) { second = s; });
  sim.run_until(sim.now() + Time::days(1));
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->success);
}

TEST_F(WorkflowFixture, RetryRecoversFromTransientOutage) {
  ConcreteDag dag;
  ConcreteNode n;
  n.type = NodeType::kCompute;
  n.name = "solo";
  n.site = "ALPHA";
  n.runtime = Time::hours(1);
  n.requested_walltime = Time::hours(2);
  dag.nodes = {n};

  // Gatekeeper down at submission; recovers before DAGMan's retries
  // (attempts at t=0, 10, 20 minutes) exhaust.
  grid.site("ALPHA")->gatekeeper().set_available(false);
  sim.schedule_in(Time::minutes(15), [&] {
    grid.site("ALPHA")->gatekeeper().set_available(true);
  });
  std::optional<DagRunStats> stats;
  grid.dagman("usatlas").run(dag, proxy,
                             [&](const DagRunStats& s) { stats = s; });
  sim.run_until(Time::days(1));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);
}

TEST_F(WorkflowFixture, CrossSitePlacementInsertsStageNodes) {
  // Force anti-locality so parent and child land on different sites.
  PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("usatlas")};
  PlannerConfig cfg;
  cfg.vo = "usatlas";
  cfg.locality = 0.0;
  util::Rng rng{5};
  // Try a few times: with locality 0 the two nodes are bound
  // independently, so different sites happen quickly.
  bool saw_stage_in = false;
  for (int i = 0; i < 20 && !saw_stage_in; ++i) {
    const auto plan = planner.plan(two_step(), cfg, rng, sim.now());
    ASSERT_TRUE(plan.has_value());
    saw_stage_in = plan->count(NodeType::kStageIn) > 0;
  }
  EXPECT_TRUE(saw_stage_in);
}

/// WorkflowFixture with a late-binding broker attached (queue-depth
/// ranking: deterministic argmax over free CPUs).
class BrokeredWorkflowFixture : public WorkflowFixture {
 protected:
  void SetUp() override {
    WorkflowFixture::SetUp();
    grid.attach_broker("usatlas", broker::PolicyKind::kQueueDepth);
  }

  PegasusPlanner make_planner() {
    PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("usatlas")};
    planner.set_broker(grid.broker("usatlas"));
    return planner;
  }

  static std::size_t index_of(const ConcreteDag& dag,
                              const std::string& name) {
    for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
      if (dag.nodes[i].name == name) return i;
    }
    ADD_FAILURE() << "no node named " << name;
    return 0;
  }
};

TEST_F(BrokeredWorkflowFixture, BrokeredPlanCarriesPlacementIntent) {
  auto planner = make_planner();
  PlannerConfig cfg;
  cfg.vo = "usatlas";
  cfg.archive_site = "ALPHA";
  util::Rng rng{6};
  const auto plan = planner.plan(two_step(), cfg, rng, sim.now());
  ASSERT_TRUE(plan.has_value());
  // The archive step travels as a placement intent on the final compute
  // node, not as hard-coded stage-out/register nodes.
  EXPECT_EQ(plan->count(NodeType::kStageOut), 0u);
  EXPECT_EQ(plan->count(NodeType::kRegister), 0u);
  ASSERT_EQ(plan->count(NodeType::kCompute), 2u);
  const auto& final_spec = plan->nodes[index_of(*plan, "s2")].broker_spec;
  ASSERT_TRUE(final_spec.has_value());
  EXPECT_EQ(final_spec->stage_out_site, "ALPHA");
  EXPECT_EQ(final_spec->stage_out, Bytes::gb(1));
  EXPECT_EQ(final_spec->output_lfns, (std::vector<std::string>{"out"}));
  // The intermediate derivation is consumed in-DAG: no intent.
  const auto& mid_spec = plan->nodes[index_of(*plan, "s1")].broker_spec;
  ASSERT_TRUE(mid_spec.has_value());
  EXPECT_TRUE(mid_spec->stage_out_site.empty());
}

TEST_F(BrokeredWorkflowFixture, CompletionSiteFeedsBackIntoChildren) {
  // The child's transformation exists only at BETA; the parent runs
  // anywhere and is provisionally placed at ALPHA (deeper queue).  With
  // ALPHA's gatekeeper down at dispatch the broker re-binds the parent
  // to BETA, and the child must then stage its input from BETA -- not
  // from the provisional site the planner guessed.
  pacman::add_application_package(grid.igoc().pacman_cache(), "appb",
                                  Time::minutes(5));
  grid.site("BETA")->install_application(grid.igoc().pacman_cache(), "appb");
  VirtualDataCatalog vdc;
  vdc.add_transformation({"tf", "1", "app"});
  vdc.add_transformation({"tfb", "1", "appb"});
  vdc.add_derivation(make_derivation("p", {}, {"mid"}));
  Derivation c = make_derivation("c", {"mid"}, {"out"});
  c.transformation = "tfb";
  vdc.add_derivation(c);

  auto planner = make_planner();
  PlannerConfig cfg;
  cfg.vo = "usatlas";
  util::Rng rng{7};
  auto plan = planner.plan(*vdc.request({"out"}), cfg, rng, sim.now());
  ASSERT_TRUE(plan.has_value());
  const std::size_t pi = index_of(*plan, "p");
  const std::size_t ci = index_of(*plan, "c");
  ASSERT_EQ(plan->nodes[pi].site, "ALPHA");  // provisional: 16 > 8 free
  ASSERT_EQ(plan->nodes[ci].site, "BETA");   // only site with appb
  // The fold recorded the provisional staging source and its producer.
  EXPECT_EQ(plan->nodes[ci].source_site, "ALPHA");
  EXPECT_EQ(plan->nodes[ci].source_parent, pi);

  grid.site("ALPHA")->gatekeeper().set_available(false);
  std::optional<DagRunStats> stats;
  grid.dagman("usatlas").run(std::move(*plan), proxy,
                             [&](const DagRunStats& s) { stats = s; });
  sim.run_until(sim.now() + Time::days(2));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);
  // Late binding moved the parent; the child's recorded staging source
  // followed the data to the actual completion site.
  EXPECT_EQ(stats->node_results[pi].site, "BETA");
  EXPECT_EQ(stats->node_results[ci].source_site, "BETA");
}

TEST_F(BrokeredWorkflowFixture, RescueRefreshDropsDepartedSites) {
  auto planner = make_planner();
  PlannerConfig cfg;
  cfg.vo = "usatlas";
  util::Rng rng{8};
  auto plan = planner.plan(two_step(), cfg, rng, sim.now());
  ASSERT_TRUE(plan.has_value());
  for (const auto& n : plan->nodes) {
    ASSERT_TRUE(n.broker_spec.has_value());
    ASSERT_EQ(n.broker_spec->candidates.size(), 2u);
  }
  const ConcreteDag original = *plan;  // run() consumes the plan

  grid.site("ALPHA")->gatekeeper().set_available(false);
  grid.site("BETA")->gatekeeper().set_available(false);
  std::optional<DagRunStats> stats;
  grid.dagman("usatlas").run(std::move(*plan), proxy,
                             [&](const DagRunStats& s) { stats = s; });
  sim.run_until(sim.now() + Time::days(2));
  ASSERT_TRUE(stats.has_value());
  ASSERT_FALSE(stats->success);
  ASSERT_FALSE(stats->rescue.empty());

  // ALPHA recovers, but BETA leaves the grid entirely: its GRIS drops
  // out of the VO index.  Wait past the view TTLs so the broker's live
  // view notices before the rescue DAG is rebuilt.
  grid.site("ALPHA")->gatekeeper().set_available(true);
  grid.vo_giis("usatlas")->deregister_gris("BETA");
  sim.run_until(sim.now() + Time::minutes(6));

  const ConcreteDag rescue = grid.dagman("usatlas").rescue_dag_refreshed(
      original, *stats, sim.now());
  ASSERT_FALSE(rescue.nodes.empty());
  for (const auto& n : rescue.nodes) {
    ASSERT_TRUE(n.broker_spec.has_value());
    EXPECT_EQ(n.broker_spec->candidates, (std::vector<std::string>{"ALPHA"}));
  }
}

/// Self-contained brokered two-site fabric, constructible twice in one
/// test body for determinism comparisons (a fixture instance cannot be).
struct BrokeredFabric {
  sim::Simulation sim;
  core::Grid3 grid{sim, 77};
  vo::VomsProxy proxy;

  BrokeredFabric() {
    grid.add_vo("usatlas");
    pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                    Time::minutes(5));
    core::SiteConfig a;
    a.name = "ALPHA";
    a.owner_vo = "usatlas";
    a.cpus = 16;
    a.policy.max_walltime = Time::hours(48);
    a.policy.dedicated = true;
    core::SiteConfig b = a;
    b.name = "BETA";
    b.cpus = 8;
    grid.add_site(a, /*reliability=*/1000.0);
    grid.add_site(b, /*reliability=*/1000.0);
    grid.site("ALPHA")->install_application(grid.igoc().pacman_cache(),
                                            "app");
    grid.site("BETA")->install_application(grid.igoc().pacman_cache(),
                                           "app");
    const vo::Certificate cert =
        grid.add_user("usatlas", "tester", vo::Role::kAppAdmin);
    proxy = *grid.make_proxy(cert, "usatlas", Time::hours(200));
    const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
    grid.site("ALPHA")->refresh_gridmap(servers);
    grid.site("BETA")->refresh_gridmap(servers);
    for (const char* site : {"ALPHA", "BETA"}) {
      grid.site(site)->gatekeeper().set_submission_flake_rate(0.0);
      grid.site(site)->gatekeeper().set_environment_error_rate(0.0);
    }
    grid.attach_broker("usatlas", broker::PolicyKind::kQueueDepth);
    grid.start_operations();
    sim.run_until(Time::minutes(1));
  }

  /// Plan the two-step chain, run it with both gatekeepers down (every
  /// node fails after rebind exhaustion), then refresh the rescue DAG
  /// from the recovered live view.
  ConcreteDag failed_run_and_refresh() {
    VirtualDataCatalog vdc;
    vdc.add_transformation({"tf", "1", "app"});
    vdc.add_derivation(make_derivation("s1", {}, {"mid"}));
    vdc.add_derivation(make_derivation("s2", {"mid"}, {"out"}));
    PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("usatlas")};
    planner.set_broker(grid.broker("usatlas"));
    PlannerConfig cfg;
    cfg.vo = "usatlas";
    cfg.archive_site = "ALPHA";
    util::Rng rng{11};
    auto plan = planner.plan(*vdc.request({"out"}), cfg, rng, sim.now());
    if (!plan.has_value()) {
      ADD_FAILURE() << "plan failed";
      return {};
    }
    const ConcreteDag original = *plan;
    grid.site("ALPHA")->gatekeeper().set_available(false);
    grid.site("BETA")->gatekeeper().set_available(false);
    std::optional<DagRunStats> stats;
    grid.dagman("usatlas").run(std::move(*plan), proxy,
                               [&](const DagRunStats& s) { stats = s; });
    sim.run_until(sim.now() + Time::days(2));
    if (!stats.has_value() || stats->success) {
      ADD_FAILURE() << "expected a failed run";
      return {};
    }
    grid.site("ALPHA")->gatekeeper().set_available(true);
    grid.site("BETA")->gatekeeper().set_available(true);
    sim.run_until(sim.now() + Time::minutes(6));
    return grid.dagman("usatlas").rescue_dag_refreshed(original, *stats,
                                                       sim.now());
  }
};

TEST(BrokeredDeterminism, RescueRefreshIsReproducible) {
  BrokeredFabric f1;
  BrokeredFabric f2;
  const ConcreteDag r1 = f1.failed_run_and_refresh();
  const ConcreteDag r2 = f2.failed_run_and_refresh();
  // The failed runs made identical match decisions...
  EXPECT_EQ(f1.grid.broker("usatlas")->serialize_match_log(),
            f2.grid.broker("usatlas")->serialize_match_log());
  EXPECT_FALSE(f1.grid.broker("usatlas")->serialize_match_log().empty());
  // ...and the refreshed rescue plans are structurally identical.
  ASSERT_EQ(r1.nodes.size(), r2.nodes.size());
  ASSERT_FALSE(r1.nodes.empty());
  for (std::size_t i = 0; i < r1.nodes.size(); ++i) {
    EXPECT_EQ(r1.nodes[i].name, r2.nodes[i].name);
    EXPECT_EQ(r1.nodes[i].site, r2.nodes[i].site);
    ASSERT_EQ(r1.nodes[i].broker_spec.has_value(),
              r2.nodes[i].broker_spec.has_value());
    if (r1.nodes[i].broker_spec.has_value()) {
      EXPECT_EQ(r1.nodes[i].broker_spec->candidates,
                r2.nodes[i].broker_spec->candidates);
      EXPECT_FALSE(r1.nodes[i].broker_spec->candidates.empty());
    }
  }
}

}  // namespace
}  // namespace grid3::workflow
