// Unit tests for the section 8 policy auditor.
#include <gtest/gtest.h>

#include "core/policy_audit.h"
#include "mds/schema.h"

namespace grid3::core {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  Grid3 grid{sim, 909};

  Site& add(const std::string& name, SitePolicy policy = {}) {
    grid.add_vo("usatlas");
    grid.add_vo("uscms");
    SiteConfig cfg;
    cfg.name = name;
    cfg.owner_vo = "usatlas";
    cfg.cpus = 16;
    cfg.policy = policy;
    return grid.add_site(cfg, /*reliability=*/1000.0);
  }

  void record_job(const std::string& site, const std::string& vo,
                  double runtime_h) {
    monitoring::JobRecord r;
    r.vo = vo;
    r.site = site;
    r.user_dn = "/CN=u";
    r.submitted = r.started = Time::hours(1);
    r.finished = Time::hours(1.0 + runtime_h);
    r.success = true;
    grid.igoc().job_db().insert(std::move(r));
  }
};

TEST_F(AuditTest, CleanSitePassesAllChecks) {
  add("GOOD");
  const auto report =
      PolicyAuditor{grid}.audit(Time::zero(), Time::days(30));
  EXPECT_EQ(report.sites_audited, 1u);
  EXPECT_TRUE(report.clean());
}

TEST_F(AuditTest, WalltimeMismatchIsViolation) {
  Site& site = add("DRIFTED");
  // An admin shortened the queue limit without updating MDS.
  site.scheduler().set_max_walltime(Time::hours(12));
  PolicyAuditor auditor{grid};
  const auto findings = auditor.check_published_walltime();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, AuditSeverity::kViolation);
  EXPECT_EQ(findings[0].site, "DRIFTED");
  EXPECT_EQ(findings[0].check, "walltime-consistent");
}

TEST_F(AuditTest, MissingAttributeIsWarning) {
  Site& site = add("SPARSE");
  site.gris().retract(mds::grid3ext::kTmpDir);
  const auto findings = PolicyAuditor{grid}.check_required_attributes();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, AuditSeverity::kWarning);
  EXPECT_NE(findings[0].detail.find("Grid3TmpDir"), std::string::npos);
}

TEST_F(AuditTest, ClosedShareViolationDetected) {
  SitePolicy policy;
  policy.vo_shares = {{"usatlas", 1.0}};
  policy.closed_shares = true;
  add("CLOSED", policy);
  // A uscms job somehow ran there (e.g. stale grid-map mapping).
  record_job("CLOSED", "uscms", 2.0);
  record_job("CLOSED", "usatlas", 2.0);
  const auto findings =
      PolicyAuditor{grid}.check_closed_shares(Time::zero(), Time::days(30));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, AuditSeverity::kViolation);
  EXPECT_NE(findings[0].detail.find("uscms"), std::string::npos);
}

TEST_F(AuditTest, FairShareSkewFlagged) {
  SitePolicy policy;
  policy.vo_shares = {{"usatlas", 1.0}, {"uscms", 1.0}};
  add("SKEWED", policy);
  // Equal shares configured, but ATLAS took 10x the CPU.
  for (int i = 0; i < 10; ++i) record_job("SKEWED", "usatlas", 24.0);
  record_job("SKEWED", "uscms", 24.0);
  const auto findings = PolicyAuditor{grid}.check_fair_share(
      Time::zero(), Time::days(30), /*tolerance=*/3.0);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "fair-share");
}

TEST_F(AuditTest, BalancedUsageWithinTolerancePasses) {
  SitePolicy policy;
  policy.vo_shares = {{"usatlas", 2.0}, {"uscms", 1.0}};
  add("BALANCED", policy);
  for (int i = 0; i < 4; ++i) record_job("BALANCED", "usatlas", 24.0);
  for (int i = 0; i < 2; ++i) record_job("BALANCED", "uscms", 24.0);
  EXPECT_TRUE(PolicyAuditor{grid}
                  .check_fair_share(Time::zero(), Time::days(30))
                  .empty());
}

TEST(AuditReport, SeverityCounting) {
  AuditReport report;
  report.findings = {{AuditSeverity::kWarning, "a", "c", "d"},
                     {AuditSeverity::kViolation, "a", "c", "d"},
                     {AuditSeverity::kWarning, "b", "c", "d"}};
  EXPECT_EQ(report.count(AuditSeverity::kWarning), 2u);
  EXPECT_EQ(report.count(AuditSeverity::kViolation), 1u);
  EXPECT_FALSE(report.clean());
}

}  // namespace
}  // namespace grid3::core
