# Empty dependencies file for grid3_net.
# This may be replaced when dependencies are built.
