file(REMOVE_RECURSE
  "libgrid3_net.a"
)
