file(REMOVE_RECURSE
  "CMakeFiles/grid3_net.dir/network.cpp.o"
  "CMakeFiles/grid3_net.dir/network.cpp.o.d"
  "libgrid3_net.a"
  "libgrid3_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
