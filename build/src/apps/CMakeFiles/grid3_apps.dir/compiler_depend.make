# Empty compiler generated dependencies file for grid3_apps.
# This may be replaced when dependencies are built.
