file(REMOVE_RECURSE
  "libgrid3_apps.a"
)
