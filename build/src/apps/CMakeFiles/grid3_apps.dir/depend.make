# Empty dependencies file for grid3_apps.
# This may be replaced when dependencies are built.
