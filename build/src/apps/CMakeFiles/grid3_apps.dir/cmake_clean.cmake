file(REMOVE_RECURSE
  "CMakeFiles/grid3_apps.dir/appbase.cpp.o"
  "CMakeFiles/grid3_apps.dir/appbase.cpp.o.d"
  "CMakeFiles/grid3_apps.dir/atlas.cpp.o"
  "CMakeFiles/grid3_apps.dir/atlas.cpp.o.d"
  "CMakeFiles/grid3_apps.dir/btev.cpp.o"
  "CMakeFiles/grid3_apps.dir/btev.cpp.o.d"
  "CMakeFiles/grid3_apps.dir/cms.cpp.o"
  "CMakeFiles/grid3_apps.dir/cms.cpp.o.d"
  "CMakeFiles/grid3_apps.dir/dial.cpp.o"
  "CMakeFiles/grid3_apps.dir/dial.cpp.o.d"
  "CMakeFiles/grid3_apps.dir/entrada.cpp.o"
  "CMakeFiles/grid3_apps.dir/entrada.cpp.o.d"
  "CMakeFiles/grid3_apps.dir/exerciser.cpp.o"
  "CMakeFiles/grid3_apps.dir/exerciser.cpp.o.d"
  "CMakeFiles/grid3_apps.dir/ivdgl.cpp.o"
  "CMakeFiles/grid3_apps.dir/ivdgl.cpp.o.d"
  "CMakeFiles/grid3_apps.dir/launcher.cpp.o"
  "CMakeFiles/grid3_apps.dir/launcher.cpp.o.d"
  "CMakeFiles/grid3_apps.dir/ligo.cpp.o"
  "CMakeFiles/grid3_apps.dir/ligo.cpp.o.d"
  "CMakeFiles/grid3_apps.dir/scenario.cpp.o"
  "CMakeFiles/grid3_apps.dir/scenario.cpp.o.d"
  "CMakeFiles/grid3_apps.dir/sdss.cpp.o"
  "CMakeFiles/grid3_apps.dir/sdss.cpp.o.d"
  "libgrid3_apps.a"
  "libgrid3_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
