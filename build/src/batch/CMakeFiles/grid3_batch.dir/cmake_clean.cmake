file(REMOVE_RECURSE
  "CMakeFiles/grid3_batch.dir/condor.cpp.o"
  "CMakeFiles/grid3_batch.dir/condor.cpp.o.d"
  "CMakeFiles/grid3_batch.dir/lsf.cpp.o"
  "CMakeFiles/grid3_batch.dir/lsf.cpp.o.d"
  "CMakeFiles/grid3_batch.dir/pbs.cpp.o"
  "CMakeFiles/grid3_batch.dir/pbs.cpp.o.d"
  "CMakeFiles/grid3_batch.dir/scheduler.cpp.o"
  "CMakeFiles/grid3_batch.dir/scheduler.cpp.o.d"
  "libgrid3_batch.a"
  "libgrid3_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
