file(REMOVE_RECURSE
  "libgrid3_batch.a"
)
