# Empty dependencies file for grid3_batch.
# This may be replaced when dependencies are built.
