
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/batch/condor.cpp" "src/batch/CMakeFiles/grid3_batch.dir/condor.cpp.o" "gcc" "src/batch/CMakeFiles/grid3_batch.dir/condor.cpp.o.d"
  "/root/repo/src/batch/lsf.cpp" "src/batch/CMakeFiles/grid3_batch.dir/lsf.cpp.o" "gcc" "src/batch/CMakeFiles/grid3_batch.dir/lsf.cpp.o.d"
  "/root/repo/src/batch/pbs.cpp" "src/batch/CMakeFiles/grid3_batch.dir/pbs.cpp.o" "gcc" "src/batch/CMakeFiles/grid3_batch.dir/pbs.cpp.o.d"
  "/root/repo/src/batch/scheduler.cpp" "src/batch/CMakeFiles/grid3_batch.dir/scheduler.cpp.o" "gcc" "src/batch/CMakeFiles/grid3_batch.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/grid3_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/grid3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
