file(REMOVE_RECURSE
  "libgrid3_pacman.a"
)
