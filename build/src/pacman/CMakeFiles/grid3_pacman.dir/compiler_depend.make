# Empty compiler generated dependencies file for grid3_pacman.
# This may be replaced when dependencies are built.
