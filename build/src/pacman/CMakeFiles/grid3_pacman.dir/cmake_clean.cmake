file(REMOVE_RECURSE
  "CMakeFiles/grid3_pacman.dir/installer.cpp.o"
  "CMakeFiles/grid3_pacman.dir/installer.cpp.o.d"
  "CMakeFiles/grid3_pacman.dir/package.cpp.o"
  "CMakeFiles/grid3_pacman.dir/package.cpp.o.d"
  "CMakeFiles/grid3_pacman.dir/vdt.cpp.o"
  "CMakeFiles/grid3_pacman.dir/vdt.cpp.o.d"
  "libgrid3_pacman.a"
  "libgrid3_pacman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_pacman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
