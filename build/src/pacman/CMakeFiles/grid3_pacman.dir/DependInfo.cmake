
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pacman/installer.cpp" "src/pacman/CMakeFiles/grid3_pacman.dir/installer.cpp.o" "gcc" "src/pacman/CMakeFiles/grid3_pacman.dir/installer.cpp.o.d"
  "/root/repo/src/pacman/package.cpp" "src/pacman/CMakeFiles/grid3_pacman.dir/package.cpp.o" "gcc" "src/pacman/CMakeFiles/grid3_pacman.dir/package.cpp.o.d"
  "/root/repo/src/pacman/vdt.cpp" "src/pacman/CMakeFiles/grid3_pacman.dir/vdt.cpp.o" "gcc" "src/pacman/CMakeFiles/grid3_pacman.dir/vdt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mds/CMakeFiles/grid3_mds.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/grid3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
