file(REMOVE_RECURSE
  "CMakeFiles/grid3_gridftp.dir/gridftp.cpp.o"
  "CMakeFiles/grid3_gridftp.dir/gridftp.cpp.o.d"
  "CMakeFiles/grid3_gridftp.dir/netlogger.cpp.o"
  "CMakeFiles/grid3_gridftp.dir/netlogger.cpp.o.d"
  "libgrid3_gridftp.a"
  "libgrid3_gridftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_gridftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
