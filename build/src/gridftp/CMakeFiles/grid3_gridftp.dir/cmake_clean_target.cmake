file(REMOVE_RECURSE
  "libgrid3_gridftp.a"
)
