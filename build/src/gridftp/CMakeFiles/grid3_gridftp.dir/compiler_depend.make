# Empty compiler generated dependencies file for grid3_gridftp.
# This may be replaced when dependencies are built.
