file(REMOVE_RECURSE
  "libgrid3_core.a"
)
