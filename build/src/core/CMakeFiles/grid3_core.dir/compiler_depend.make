# Empty compiler generated dependencies file for grid3_core.
# This may be replaced when dependencies are built.
