file(REMOVE_RECURSE
  "CMakeFiles/grid3_core.dir/failure.cpp.o"
  "CMakeFiles/grid3_core.dir/failure.cpp.o.d"
  "CMakeFiles/grid3_core.dir/grid3.cpp.o"
  "CMakeFiles/grid3_core.dir/grid3.cpp.o.d"
  "CMakeFiles/grid3_core.dir/igoc.cpp.o"
  "CMakeFiles/grid3_core.dir/igoc.cpp.o.d"
  "CMakeFiles/grid3_core.dir/metrics.cpp.o"
  "CMakeFiles/grid3_core.dir/metrics.cpp.o.d"
  "CMakeFiles/grid3_core.dir/policy_audit.cpp.o"
  "CMakeFiles/grid3_core.dir/policy_audit.cpp.o.d"
  "CMakeFiles/grid3_core.dir/roster.cpp.o"
  "CMakeFiles/grid3_core.dir/roster.cpp.o.d"
  "CMakeFiles/grid3_core.dir/site.cpp.o"
  "CMakeFiles/grid3_core.dir/site.cpp.o.d"
  "libgrid3_core.a"
  "libgrid3_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
