
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/calendar.cpp" "src/util/CMakeFiles/grid3_util.dir/calendar.cpp.o" "gcc" "src/util/CMakeFiles/grid3_util.dir/calendar.cpp.o.d"
  "/root/repo/src/util/distributions.cpp" "src/util/CMakeFiles/grid3_util.dir/distributions.cpp.o" "gcc" "src/util/CMakeFiles/grid3_util.dir/distributions.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/grid3_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/grid3_util.dir/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/grid3_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/grid3_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/rrd.cpp" "src/util/CMakeFiles/grid3_util.dir/rrd.cpp.o" "gcc" "src/util/CMakeFiles/grid3_util.dir/rrd.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/grid3_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/grid3_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/grid3_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/grid3_util.dir/table.cpp.o.d"
  "/root/repo/src/util/timeseries.cpp" "src/util/CMakeFiles/grid3_util.dir/timeseries.cpp.o" "gcc" "src/util/CMakeFiles/grid3_util.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
