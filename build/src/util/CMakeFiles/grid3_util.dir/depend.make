# Empty dependencies file for grid3_util.
# This may be replaced when dependencies are built.
