file(REMOVE_RECURSE
  "libgrid3_util.a"
)
