file(REMOVE_RECURSE
  "CMakeFiles/grid3_util.dir/calendar.cpp.o"
  "CMakeFiles/grid3_util.dir/calendar.cpp.o.d"
  "CMakeFiles/grid3_util.dir/distributions.cpp.o"
  "CMakeFiles/grid3_util.dir/distributions.cpp.o.d"
  "CMakeFiles/grid3_util.dir/log.cpp.o"
  "CMakeFiles/grid3_util.dir/log.cpp.o.d"
  "CMakeFiles/grid3_util.dir/rng.cpp.o"
  "CMakeFiles/grid3_util.dir/rng.cpp.o.d"
  "CMakeFiles/grid3_util.dir/rrd.cpp.o"
  "CMakeFiles/grid3_util.dir/rrd.cpp.o.d"
  "CMakeFiles/grid3_util.dir/stats.cpp.o"
  "CMakeFiles/grid3_util.dir/stats.cpp.o.d"
  "CMakeFiles/grid3_util.dir/table.cpp.o"
  "CMakeFiles/grid3_util.dir/table.cpp.o.d"
  "CMakeFiles/grid3_util.dir/timeseries.cpp.o"
  "CMakeFiles/grid3_util.dir/timeseries.cpp.o.d"
  "libgrid3_util.a"
  "libgrid3_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
