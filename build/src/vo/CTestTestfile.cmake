# CMake generated Testfile for 
# Source directory: /root/repo/src/vo
# Build directory: /root/repo/build/src/vo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
