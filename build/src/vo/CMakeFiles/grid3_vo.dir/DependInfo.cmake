
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vo/gridmap.cpp" "src/vo/CMakeFiles/grid3_vo.dir/gridmap.cpp.o" "gcc" "src/vo/CMakeFiles/grid3_vo.dir/gridmap.cpp.o.d"
  "/root/repo/src/vo/voms.cpp" "src/vo/CMakeFiles/grid3_vo.dir/voms.cpp.o" "gcc" "src/vo/CMakeFiles/grid3_vo.dir/voms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grid3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
