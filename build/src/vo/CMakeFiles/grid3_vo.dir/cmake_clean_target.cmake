file(REMOVE_RECURSE
  "libgrid3_vo.a"
)
