# Empty compiler generated dependencies file for grid3_vo.
# This may be replaced when dependencies are built.
