file(REMOVE_RECURSE
  "CMakeFiles/grid3_vo.dir/gridmap.cpp.o"
  "CMakeFiles/grid3_vo.dir/gridmap.cpp.o.d"
  "CMakeFiles/grid3_vo.dir/voms.cpp.o"
  "CMakeFiles/grid3_vo.dir/voms.cpp.o.d"
  "libgrid3_vo.a"
  "libgrid3_vo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_vo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
