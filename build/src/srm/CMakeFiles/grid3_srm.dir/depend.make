# Empty dependencies file for grid3_srm.
# This may be replaced when dependencies are built.
