file(REMOVE_RECURSE
  "CMakeFiles/grid3_srm.dir/dcache.cpp.o"
  "CMakeFiles/grid3_srm.dir/dcache.cpp.o.d"
  "CMakeFiles/grid3_srm.dir/disk.cpp.o"
  "CMakeFiles/grid3_srm.dir/disk.cpp.o.d"
  "CMakeFiles/grid3_srm.dir/srm.cpp.o"
  "CMakeFiles/grid3_srm.dir/srm.cpp.o.d"
  "libgrid3_srm.a"
  "libgrid3_srm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_srm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
