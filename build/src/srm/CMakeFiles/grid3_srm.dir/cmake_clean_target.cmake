file(REMOVE_RECURSE
  "libgrid3_srm.a"
)
