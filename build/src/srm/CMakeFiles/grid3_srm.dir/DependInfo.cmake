
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/srm/dcache.cpp" "src/srm/CMakeFiles/grid3_srm.dir/dcache.cpp.o" "gcc" "src/srm/CMakeFiles/grid3_srm.dir/dcache.cpp.o.d"
  "/root/repo/src/srm/disk.cpp" "src/srm/CMakeFiles/grid3_srm.dir/disk.cpp.o" "gcc" "src/srm/CMakeFiles/grid3_srm.dir/disk.cpp.o.d"
  "/root/repo/src/srm/srm.cpp" "src/srm/CMakeFiles/grid3_srm.dir/srm.cpp.o" "gcc" "src/srm/CMakeFiles/grid3_srm.dir/srm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grid3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
