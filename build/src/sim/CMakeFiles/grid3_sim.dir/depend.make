# Empty dependencies file for grid3_sim.
# This may be replaced when dependencies are built.
