file(REMOVE_RECURSE
  "CMakeFiles/grid3_sim.dir/simulation.cpp.o"
  "CMakeFiles/grid3_sim.dir/simulation.cpp.o.d"
  "libgrid3_sim.a"
  "libgrid3_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
