file(REMOVE_RECURSE
  "libgrid3_sim.a"
)
