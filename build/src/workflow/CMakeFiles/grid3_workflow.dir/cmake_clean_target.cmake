file(REMOVE_RECURSE
  "libgrid3_workflow.a"
)
