# Empty compiler generated dependencies file for grid3_workflow.
# This may be replaced when dependencies are built.
