# Empty dependencies file for grid3_workflow.
# This may be replaced when dependencies are built.
