file(REMOVE_RECURSE
  "CMakeFiles/grid3_workflow.dir/dag.cpp.o"
  "CMakeFiles/grid3_workflow.dir/dag.cpp.o.d"
  "CMakeFiles/grid3_workflow.dir/dagman.cpp.o"
  "CMakeFiles/grid3_workflow.dir/dagman.cpp.o.d"
  "CMakeFiles/grid3_workflow.dir/planner.cpp.o"
  "CMakeFiles/grid3_workflow.dir/planner.cpp.o.d"
  "CMakeFiles/grid3_workflow.dir/vdc.cpp.o"
  "CMakeFiles/grid3_workflow.dir/vdc.cpp.o.d"
  "libgrid3_workflow.a"
  "libgrid3_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
