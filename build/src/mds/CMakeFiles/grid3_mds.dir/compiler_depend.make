# Empty compiler generated dependencies file for grid3_mds.
# This may be replaced when dependencies are built.
