
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mds/giis.cpp" "src/mds/CMakeFiles/grid3_mds.dir/giis.cpp.o" "gcc" "src/mds/CMakeFiles/grid3_mds.dir/giis.cpp.o.d"
  "/root/repo/src/mds/gris.cpp" "src/mds/CMakeFiles/grid3_mds.dir/gris.cpp.o" "gcc" "src/mds/CMakeFiles/grid3_mds.dir/gris.cpp.o.d"
  "/root/repo/src/mds/schema.cpp" "src/mds/CMakeFiles/grid3_mds.dir/schema.cpp.o" "gcc" "src/mds/CMakeFiles/grid3_mds.dir/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grid3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
