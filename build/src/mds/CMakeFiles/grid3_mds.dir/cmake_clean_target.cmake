file(REMOVE_RECURSE
  "libgrid3_mds.a"
)
