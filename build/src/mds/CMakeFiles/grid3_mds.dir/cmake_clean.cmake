file(REMOVE_RECURSE
  "CMakeFiles/grid3_mds.dir/giis.cpp.o"
  "CMakeFiles/grid3_mds.dir/giis.cpp.o.d"
  "CMakeFiles/grid3_mds.dir/gris.cpp.o"
  "CMakeFiles/grid3_mds.dir/gris.cpp.o.d"
  "CMakeFiles/grid3_mds.dir/schema.cpp.o"
  "CMakeFiles/grid3_mds.dir/schema.cpp.o.d"
  "libgrid3_mds.a"
  "libgrid3_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
