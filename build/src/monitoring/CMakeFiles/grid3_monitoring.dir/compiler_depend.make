# Empty compiler generated dependencies file for grid3_monitoring.
# This may be replaced when dependencies are built.
