file(REMOVE_RECURSE
  "CMakeFiles/grid3_monitoring.dir/acdc.cpp.o"
  "CMakeFiles/grid3_monitoring.dir/acdc.cpp.o.d"
  "CMakeFiles/grid3_monitoring.dir/bus.cpp.o"
  "CMakeFiles/grid3_monitoring.dir/bus.cpp.o.d"
  "CMakeFiles/grid3_monitoring.dir/ganglia.cpp.o"
  "CMakeFiles/grid3_monitoring.dir/ganglia.cpp.o.d"
  "CMakeFiles/grid3_monitoring.dir/mdviewer.cpp.o"
  "CMakeFiles/grid3_monitoring.dir/mdviewer.cpp.o.d"
  "CMakeFiles/grid3_monitoring.dir/monalisa.cpp.o"
  "CMakeFiles/grid3_monitoring.dir/monalisa.cpp.o.d"
  "CMakeFiles/grid3_monitoring.dir/site_catalog.cpp.o"
  "CMakeFiles/grid3_monitoring.dir/site_catalog.cpp.o.d"
  "CMakeFiles/grid3_monitoring.dir/troubleshoot.cpp.o"
  "CMakeFiles/grid3_monitoring.dir/troubleshoot.cpp.o.d"
  "libgrid3_monitoring.a"
  "libgrid3_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
