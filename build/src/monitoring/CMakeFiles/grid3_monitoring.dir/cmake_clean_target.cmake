file(REMOVE_RECURSE
  "libgrid3_monitoring.a"
)
