
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitoring/acdc.cpp" "src/monitoring/CMakeFiles/grid3_monitoring.dir/acdc.cpp.o" "gcc" "src/monitoring/CMakeFiles/grid3_monitoring.dir/acdc.cpp.o.d"
  "/root/repo/src/monitoring/bus.cpp" "src/monitoring/CMakeFiles/grid3_monitoring.dir/bus.cpp.o" "gcc" "src/monitoring/CMakeFiles/grid3_monitoring.dir/bus.cpp.o.d"
  "/root/repo/src/monitoring/ganglia.cpp" "src/monitoring/CMakeFiles/grid3_monitoring.dir/ganglia.cpp.o" "gcc" "src/monitoring/CMakeFiles/grid3_monitoring.dir/ganglia.cpp.o.d"
  "/root/repo/src/monitoring/mdviewer.cpp" "src/monitoring/CMakeFiles/grid3_monitoring.dir/mdviewer.cpp.o" "gcc" "src/monitoring/CMakeFiles/grid3_monitoring.dir/mdviewer.cpp.o.d"
  "/root/repo/src/monitoring/monalisa.cpp" "src/monitoring/CMakeFiles/grid3_monitoring.dir/monalisa.cpp.o" "gcc" "src/monitoring/CMakeFiles/grid3_monitoring.dir/monalisa.cpp.o.d"
  "/root/repo/src/monitoring/site_catalog.cpp" "src/monitoring/CMakeFiles/grid3_monitoring.dir/site_catalog.cpp.o" "gcc" "src/monitoring/CMakeFiles/grid3_monitoring.dir/site_catalog.cpp.o.d"
  "/root/repo/src/monitoring/troubleshoot.cpp" "src/monitoring/CMakeFiles/grid3_monitoring.dir/troubleshoot.cpp.o" "gcc" "src/monitoring/CMakeFiles/grid3_monitoring.dir/troubleshoot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/grid3_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/grid3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
