file(REMOVE_RECURSE
  "libgrid3_gram.a"
)
