file(REMOVE_RECURSE
  "CMakeFiles/grid3_gram.dir/condor_g.cpp.o"
  "CMakeFiles/grid3_gram.dir/condor_g.cpp.o.d"
  "CMakeFiles/grid3_gram.dir/gatekeeper.cpp.o"
  "CMakeFiles/grid3_gram.dir/gatekeeper.cpp.o.d"
  "libgrid3_gram.a"
  "libgrid3_gram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_gram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
