# Empty dependencies file for grid3_gram.
# This may be replaced when dependencies are built.
