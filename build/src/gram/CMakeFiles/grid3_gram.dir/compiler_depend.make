# Empty compiler generated dependencies file for grid3_gram.
# This may be replaced when dependencies are built.
