file(REMOVE_RECURSE
  "libgrid3_rls.a"
)
