# Empty dependencies file for grid3_rls.
# This may be replaced when dependencies are built.
