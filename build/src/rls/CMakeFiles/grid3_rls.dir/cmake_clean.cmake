file(REMOVE_RECURSE
  "CMakeFiles/grid3_rls.dir/rls.cpp.o"
  "CMakeFiles/grid3_rls.dir/rls.cpp.o.d"
  "libgrid3_rls.a"
  "libgrid3_rls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid3_rls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
