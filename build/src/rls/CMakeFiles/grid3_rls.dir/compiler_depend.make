# Empty compiler generated dependencies file for grid3_rls.
# This may be replaced when dependencies are built.
