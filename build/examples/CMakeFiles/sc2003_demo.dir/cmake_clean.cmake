file(REMOVE_RECURSE
  "CMakeFiles/sc2003_demo.dir/sc2003_demo.cpp.o"
  "CMakeFiles/sc2003_demo.dir/sc2003_demo.cpp.o.d"
  "sc2003_demo"
  "sc2003_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc2003_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
