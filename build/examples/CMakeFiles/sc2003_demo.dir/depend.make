# Empty dependencies file for sc2003_demo.
# This may be replaced when dependencies are built.
