file(REMOVE_RECURSE
  "CMakeFiles/atlas_production.dir/atlas_production.cpp.o"
  "CMakeFiles/atlas_production.dir/atlas_production.cpp.o.d"
  "atlas_production"
  "atlas_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlas_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
