# Empty compiler generated dependencies file for atlas_production.
# This may be replaced when dependencies are built.
