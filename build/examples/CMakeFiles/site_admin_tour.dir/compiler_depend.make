# Empty compiler generated dependencies file for site_admin_tour.
# This may be replaced when dependencies are built.
