file(REMOVE_RECURSE
  "CMakeFiles/site_admin_tour.dir/site_admin_tour.cpp.o"
  "CMakeFiles/site_admin_tour.dir/site_admin_tour.cpp.o.d"
  "site_admin_tour"
  "site_admin_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_admin_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
