# Empty compiler generated dependencies file for data_transfer_challenge.
# This may be replaced when dependencies are built.
