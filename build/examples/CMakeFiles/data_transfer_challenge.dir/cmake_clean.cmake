file(REMOVE_RECURSE
  "CMakeFiles/data_transfer_challenge.dir/data_transfer_challenge.cpp.o"
  "CMakeFiles/data_transfer_challenge.dir/data_transfer_challenge.cpp.o.d"
  "data_transfer_challenge"
  "data_transfer_challenge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_transfer_challenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
