file(REMOVE_RECURSE
  "CMakeFiles/cms_mop_production.dir/cms_mop_production.cpp.o"
  "CMakeFiles/cms_mop_production.dir/cms_mop_production.cpp.o.d"
  "cms_mop_production"
  "cms_mop_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cms_mop_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
