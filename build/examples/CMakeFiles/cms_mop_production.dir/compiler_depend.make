# Empty compiler generated dependencies file for cms_mop_production.
# This may be replaced when dependencies are built.
