# Empty dependencies file for provenance_dial_test.
# This may be replaced when dependencies are built.
