file(REMOVE_RECURSE
  "CMakeFiles/provenance_dial_test.dir/provenance_dial_test.cpp.o"
  "CMakeFiles/provenance_dial_test.dir/provenance_dial_test.cpp.o.d"
  "provenance_dial_test"
  "provenance_dial_test.pdb"
  "provenance_dial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_dial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
