# Empty compiler generated dependencies file for policy_audit_test.
# This may be replaced when dependencies are built.
