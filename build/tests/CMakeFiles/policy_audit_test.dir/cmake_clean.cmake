file(REMOVE_RECURSE
  "CMakeFiles/policy_audit_test.dir/policy_audit_test.cpp.o"
  "CMakeFiles/policy_audit_test.dir/policy_audit_test.cpp.o.d"
  "policy_audit_test"
  "policy_audit_test.pdb"
  "policy_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
