# Empty compiler generated dependencies file for monitoring_test.
# This may be replaced when dependencies are built.
