file(REMOVE_RECURSE
  "CMakeFiles/monitoring_test.dir/monitoring_test.cpp.o"
  "CMakeFiles/monitoring_test.dir/monitoring_test.cpp.o.d"
  "monitoring_test"
  "monitoring_test.pdb"
  "monitoring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
