file(REMOVE_RECURSE
  "CMakeFiles/mds_test.dir/mds_test.cpp.o"
  "CMakeFiles/mds_test.dir/mds_test.cpp.o.d"
  "mds_test"
  "mds_test.pdb"
  "mds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
