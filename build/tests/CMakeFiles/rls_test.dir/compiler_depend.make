# Empty compiler generated dependencies file for rls_test.
# This may be replaced when dependencies are built.
