file(REMOVE_RECURSE
  "CMakeFiles/rls_test.dir/rls_test.cpp.o"
  "CMakeFiles/rls_test.dir/rls_test.cpp.o.d"
  "rls_test"
  "rls_test.pdb"
  "rls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
