file(REMOVE_RECURSE
  "CMakeFiles/gram_test.dir/gram_test.cpp.o"
  "CMakeFiles/gram_test.dir/gram_test.cpp.o.d"
  "gram_test"
  "gram_test.pdb"
  "gram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
