# Empty compiler generated dependencies file for gram_test.
# This may be replaced when dependencies are built.
