# Empty dependencies file for srm_test.
# This may be replaced when dependencies are built.
