file(REMOVE_RECURSE
  "CMakeFiles/srm_test.dir/srm_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm_test.cpp.o.d"
  "srm_test"
  "srm_test.pdb"
  "srm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
