file(REMOVE_RECURSE
  "CMakeFiles/pacman_test.dir/pacman_test.cpp.o"
  "CMakeFiles/pacman_test.dir/pacman_test.cpp.o.d"
  "pacman_test"
  "pacman_test.pdb"
  "pacman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
