# Empty compiler generated dependencies file for pacman_test.
# This may be replaced when dependencies are built.
