file(REMOVE_RECURSE
  "CMakeFiles/gridftp_test.dir/gridftp_test.cpp.o"
  "CMakeFiles/gridftp_test.dir/gridftp_test.cpp.o.d"
  "gridftp_test"
  "gridftp_test.pdb"
  "gridftp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridftp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
