# Empty dependencies file for gridftp_test.
# This may be replaced when dependencies are built.
