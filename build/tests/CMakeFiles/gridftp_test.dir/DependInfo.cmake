
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gridftp_test.cpp" "tests/CMakeFiles/gridftp_test.dir/gridftp_test.cpp.o" "gcc" "tests/CMakeFiles/gridftp_test.dir/gridftp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gridftp/CMakeFiles/grid3_gridftp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/grid3_net.dir/DependInfo.cmake"
  "/root/repo/build/src/srm/CMakeFiles/grid3_srm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/grid3_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/grid3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
