# Empty compiler generated dependencies file for dcache_test.
# This may be replaced when dependencies are built.
