file(REMOVE_RECURSE
  "CMakeFiles/vo_test.dir/vo_test.cpp.o"
  "CMakeFiles/vo_test.dir/vo_test.cpp.o.d"
  "vo_test"
  "vo_test.pdb"
  "vo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
