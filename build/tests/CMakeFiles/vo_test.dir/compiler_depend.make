# Empty compiler generated dependencies file for vo_test.
# This may be replaced when dependencies are built.
