# Empty dependencies file for troubleshoot_test.
# This may be replaced when dependencies are built.
