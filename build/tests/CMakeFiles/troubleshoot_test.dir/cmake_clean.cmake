file(REMOVE_RECURSE
  "CMakeFiles/troubleshoot_test.dir/troubleshoot_test.cpp.o"
  "CMakeFiles/troubleshoot_test.dir/troubleshoot_test.cpp.o.d"
  "troubleshoot_test"
  "troubleshoot_test.pdb"
  "troubleshoot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troubleshoot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
