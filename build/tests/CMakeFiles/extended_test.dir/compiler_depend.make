# Empty compiler generated dependencies file for extended_test.
# This may be replaced when dependencies are built.
