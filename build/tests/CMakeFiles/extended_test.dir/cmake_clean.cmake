file(REMOVE_RECURSE
  "CMakeFiles/extended_test.dir/extended_test.cpp.o"
  "CMakeFiles/extended_test.dir/extended_test.cpp.o.d"
  "extended_test"
  "extended_test.pdb"
  "extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
