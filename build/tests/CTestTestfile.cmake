# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/vo_test[1]_include.cmake")
include("/root/repo/build/tests/mds_test[1]_include.cmake")
include("/root/repo/build/tests/pacman_test[1]_include.cmake")
include("/root/repo/build/tests/batch_test[1]_include.cmake")
include("/root/repo/build/tests/srm_test[1]_include.cmake")
include("/root/repo/build/tests/dcache_test[1]_include.cmake")
include("/root/repo/build/tests/gridftp_test[1]_include.cmake")
include("/root/repo/build/tests/rls_test[1]_include.cmake")
include("/root/repo/build/tests/gram_test[1]_include.cmake")
include("/root/repo/build/tests/monitoring_test[1]_include.cmake")
include("/root/repo/build/tests/troubleshoot_test[1]_include.cmake")
include("/root/repo/build/tests/policy_audit_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extended_test[1]_include.cmake")
include("/root/repo/build/tests/provenance_dial_test[1]_include.cmake")
include("/root/repo/build/tests/behavior_test[1]_include.cmake")
