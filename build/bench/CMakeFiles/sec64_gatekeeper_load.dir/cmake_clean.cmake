file(REMOVE_RECURSE
  "CMakeFiles/sec64_gatekeeper_load.dir/sec64_gatekeeper_load.cpp.o"
  "CMakeFiles/sec64_gatekeeper_load.dir/sec64_gatekeeper_load.cpp.o.d"
  "sec64_gatekeeper_load"
  "sec64_gatekeeper_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_gatekeeper_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
