# Empty compiler generated dependencies file for sec64_gatekeeper_load.
# This may be replaced when dependencies are built.
