# Empty dependencies file for sec63_gridftp_demo.
# This may be replaced when dependencies are built.
