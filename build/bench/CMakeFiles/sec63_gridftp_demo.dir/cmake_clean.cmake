file(REMOVE_RECURSE
  "CMakeFiles/sec63_gridftp_demo.dir/sec63_gridftp_demo.cpp.o"
  "CMakeFiles/sec63_gridftp_demo.dir/sec63_gridftp_demo.cpp.o.d"
  "sec63_gridftp_demo"
  "sec63_gridftp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_gridftp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
