file(REMOVE_RECURSE
  "CMakeFiles/fig6_jobs_by_month.dir/fig6_jobs_by_month.cpp.o"
  "CMakeFiles/fig6_jobs_by_month.dir/fig6_jobs_by_month.cpp.o.d"
  "fig6_jobs_by_month"
  "fig6_jobs_by_month.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_jobs_by_month.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
