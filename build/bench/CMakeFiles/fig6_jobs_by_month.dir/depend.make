# Empty dependencies file for fig6_jobs_by_month.
# This may be replaced when dependencies are built.
