# Empty dependencies file for fig3_differential_cpu.
# This may be replaced when dependencies are built.
