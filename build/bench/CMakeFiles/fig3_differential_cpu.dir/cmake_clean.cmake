file(REMOVE_RECURSE
  "CMakeFiles/fig3_differential_cpu.dir/fig3_differential_cpu.cpp.o"
  "CMakeFiles/fig3_differential_cpu.dir/fig3_differential_cpu.cpp.o.d"
  "fig3_differential_cpu"
  "fig3_differential_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_differential_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
