
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_schedulers.cpp" "bench/CMakeFiles/ablation_schedulers.dir/ablation_schedulers.cpp.o" "gcc" "bench/CMakeFiles/ablation_schedulers.dir/ablation_schedulers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/grid3_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/grid3_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/grid3_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/monitoring/CMakeFiles/grid3_monitoring.dir/DependInfo.cmake"
  "/root/repo/build/src/gram/CMakeFiles/grid3_gram.dir/DependInfo.cmake"
  "/root/repo/build/src/gridftp/CMakeFiles/grid3_gridftp.dir/DependInfo.cmake"
  "/root/repo/build/src/rls/CMakeFiles/grid3_rls.dir/DependInfo.cmake"
  "/root/repo/build/src/srm/CMakeFiles/grid3_srm.dir/DependInfo.cmake"
  "/root/repo/build/src/batch/CMakeFiles/grid3_batch.dir/DependInfo.cmake"
  "/root/repo/build/src/pacman/CMakeFiles/grid3_pacman.dir/DependInfo.cmake"
  "/root/repo/build/src/mds/CMakeFiles/grid3_mds.dir/DependInfo.cmake"
  "/root/repo/build/src/vo/CMakeFiles/grid3_vo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/grid3_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/grid3_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/grid3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
