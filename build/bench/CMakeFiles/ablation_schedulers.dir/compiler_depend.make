# Empty compiler generated dependencies file for ablation_schedulers.
# This may be replaced when dependencies are built.
