file(REMOVE_RECURSE
  "CMakeFiles/perf_kernel.dir/perf_kernel.cpp.o"
  "CMakeFiles/perf_kernel.dir/perf_kernel.cpp.o.d"
  "perf_kernel"
  "perf_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
