# Empty compiler generated dependencies file for perf_kernel.
# This may be replaced when dependencies are built.
