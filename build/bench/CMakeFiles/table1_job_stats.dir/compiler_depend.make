# Empty compiler generated dependencies file for table1_job_stats.
# This may be replaced when dependencies are built.
