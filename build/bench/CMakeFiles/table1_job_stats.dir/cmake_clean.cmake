file(REMOVE_RECURSE
  "CMakeFiles/table1_job_stats.dir/table1_job_stats.cpp.o"
  "CMakeFiles/table1_job_stats.dir/table1_job_stats.cpp.o.d"
  "table1_job_stats"
  "table1_job_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_job_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
