# Empty dependencies file for sec7_milestones.
# This may be replaced when dependencies are built.
