file(REMOVE_RECURSE
  "CMakeFiles/sec7_milestones.dir/sec7_milestones.cpp.o"
  "CMakeFiles/sec7_milestones.dir/sec7_milestones.cpp.o.d"
  "sec7_milestones"
  "sec7_milestones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_milestones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
