# Empty dependencies file for sec61_atlas_failures.
# This may be replaced when dependencies are built.
