file(REMOVE_RECURSE
  "CMakeFiles/sec61_atlas_failures.dir/sec61_atlas_failures.cpp.o"
  "CMakeFiles/sec61_atlas_failures.dir/sec61_atlas_failures.cpp.o.d"
  "sec61_atlas_failures"
  "sec61_atlas_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec61_atlas_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
