file(REMOVE_RECURSE
  "CMakeFiles/fig2_integrated_cpu.dir/fig2_integrated_cpu.cpp.o"
  "CMakeFiles/fig2_integrated_cpu.dir/fig2_integrated_cpu.cpp.o.d"
  "fig2_integrated_cpu"
  "fig2_integrated_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_integrated_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
