# Empty compiler generated dependencies file for fig2_integrated_cpu.
# This may be replaced when dependencies are built.
