# Empty dependencies file for ablation_srm.
# This may be replaced when dependencies are built.
