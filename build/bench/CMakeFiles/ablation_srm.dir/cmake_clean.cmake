file(REMOVE_RECURSE
  "CMakeFiles/ablation_srm.dir/ablation_srm.cpp.o"
  "CMakeFiles/ablation_srm.dir/ablation_srm.cpp.o.d"
  "ablation_srm"
  "ablation_srm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_srm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
