# Empty dependencies file for fig4_cms_by_site.
# This may be replaced when dependencies are built.
