file(REMOVE_RECURSE
  "CMakeFiles/fig4_cms_by_site.dir/fig4_cms_by_site.cpp.o"
  "CMakeFiles/fig4_cms_by_site.dir/fig4_cms_by_site.cpp.o.d"
  "fig4_cms_by_site"
  "fig4_cms_by_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cms_by_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
