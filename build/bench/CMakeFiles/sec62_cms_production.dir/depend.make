# Empty dependencies file for sec62_cms_production.
# This may be replaced when dependencies are built.
