file(REMOVE_RECURSE
  "CMakeFiles/sec62_cms_production.dir/sec62_cms_production.cpp.o"
  "CMakeFiles/sec62_cms_production.dir/sec62_cms_production.cpp.o.d"
  "sec62_cms_production"
  "sec62_cms_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_cms_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
