file(REMOVE_RECURSE
  "CMakeFiles/fig5_data_consumed.dir/fig5_data_consumed.cpp.o"
  "CMakeFiles/fig5_data_consumed.dir/fig5_data_consumed.cpp.o.d"
  "fig5_data_consumed"
  "fig5_data_consumed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_data_consumed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
