# Empty compiler generated dependencies file for fig5_data_consumed.
# This may be replaced when dependencies are built.
