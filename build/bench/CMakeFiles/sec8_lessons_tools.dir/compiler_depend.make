# Empty compiler generated dependencies file for sec8_lessons_tools.
# This may be replaced when dependencies are built.
