file(REMOVE_RECURSE
  "CMakeFiles/sec8_lessons_tools.dir/sec8_lessons_tools.cpp.o"
  "CMakeFiles/sec8_lessons_tools.dir/sec8_lessons_tools.cpp.o.d"
  "sec8_lessons_tools"
  "sec8_lessons_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec8_lessons_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
