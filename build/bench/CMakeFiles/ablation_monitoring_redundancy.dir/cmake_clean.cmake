file(REMOVE_RECURSE
  "CMakeFiles/ablation_monitoring_redundancy.dir/ablation_monitoring_redundancy.cpp.o"
  "CMakeFiles/ablation_monitoring_redundancy.dir/ablation_monitoring_redundancy.cpp.o.d"
  "ablation_monitoring_redundancy"
  "ablation_monitoring_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_monitoring_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
