# Empty compiler generated dependencies file for ablation_monitoring_redundancy.
# This may be replaced when dependencies are built.
