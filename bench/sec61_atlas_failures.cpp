// Regenerates the section 6.1 ATLAS failure analysis: ">5000 jobs ...
// processed at 18 sites, with total data I/O of about 1.1 TB.  We
// observed a failure rate of approximately 30% ... Approximately 90% of
// failures were due to site problems: disk filling errors, gatekeeper
// overloading, or network interruptions."
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace grid3;
  bench::header("Section 6.1: U.S. ATLAS GCE failure analysis",
                "section 6.1 narrative metrics");

  auto run = bench::run_scenario(/*months=*/4);
  const auto& db = (*run)->grid().igoc().job_db();
  const auto f = db.failures("usatlas", Time::zero(), run->sim.now());
  const auto stats =
      db.stats_for("usatlas", Time::zero(), run->sim.now());

  util::AsciiTable table{{"metric", "paper", "measured"}};
  table.add_row({"jobs processed", ">5000 (through Apr: 7455)",
                 util::AsciiTable::integer(
                     static_cast<std::int64_t>(stats.jobs))});
  table.add_row({"sites used", "18",
                 util::AsciiTable::integer(
                     static_cast<std::int64_t>(stats.sites_used))});
  table.add_row({"failure rate", "~30%",
                 util::AsciiTable::percent(f.failure_rate())});
  table.add_row({"failures that are site problems", "~90%",
                 util::AsciiTable::percent(f.site_problem_share())});

  // Data I/O: ATLAS stage-in + archive traffic.
  Bytes io;
  for (const auto& t : db.transfers()) {
    if (t.vo == "usatlas") io += t.size;
  }
  table.add_row({"total data I/O", "~1.1 TB",
                 util::AsciiTable::num(io.to_tb(), 2) + " TB"});
  table.print(std::cout);

  std::cout << "\nfailure classes (paper: disk filling, gatekeeper "
               "overloading, network interruptions; plus the ACDC nightly "
               "rollover reprocessing):\n";
  for (const auto& [cls, count] : f.by_class) {
    std::cout << "  " << cls << ": " << count << "\n";
  }
  bench::scale_note();
  return 0;
}
