// Ablation B: the section 5.2 claim that monitoring redundancy "has the
// advantage of permitting crosschecks on the data collected."
//
// The same ground truth (running jobs) flows through two independent
// paths: Ganglia gmond sampling and ACDC job records.  We break the
// Ganglia path at a fraction of sites and show the crosscheck divergence
// detects the loss, while either single path alone would report a
// self-consistent but wrong grid view.
#include <iostream>

#include "bench_common.h"
#include "monitoring/ganglia.h"
#include "workload/catalog.h"

int main() {
  using namespace grid3;
  bench::header("Ablation B: monitoring redundancy crosscheck",
                "section 5.2: redundant collection paths");

  // Ground truth comes from the catalog's calib-month scenario (small
  // LIGO + SDSS campaign batches), run with health breakers off so the
  // killed monitors are not quarantined away -- the crosscheck, not the
  // breaker, must be what notices the loss.
  workload::ScenarioSpec spec =
      workload::ScenarioCatalog::get("calib-month", bench::seed());
  spec.base.job_scale *= bench::job_scale();
  spec.base.cpu_scale = bench::cpu_scale();
  workload::StackConfig stack;
  stack.health_breakers = false;

  util::AsciiTable table{{"site monitors killed", "ACDC avg running",
                          "MonALISA avg running", "crosscheck divergence"}};
  for (const double kill_fraction : {0.0, 0.25, 0.5, 1.0}) {
    workload::CatalogRun run{spec, bench::quick(), stack};
    // Let the grid warm up, then break gmond at a fraction of sites.
    run.run_until(Time::days(3));
    auto& sites = run.scenario().grid().sites();
    const auto kill_count =
        static_cast<std::size_t>(kill_fraction * sites.size());
    // Killing gmond is modelled by stopping the sites' monitor loops'
    // Ganglia component: take the whole monitor loop down (GRIS dynamic
    // updates stop too, exactly like a wedged host daemon).
    for (std::size_t i = 0; i < kill_count; ++i) {
      sites[i]->stop_services();
    }
    run.run();

    const auto viewer = run.scenario().viewer();
    const Time from = Time::days(4);
    const Time to = run.sim().now();
    const double acdc = viewer.concurrency(from, to).time_average(from, to);
    double monalisa = 0.0;
    const auto& bus = run.scenario().grid().igoc().bus();
    for (const auto& key :
         bus.keys_with_prefix("monalisa.vo_jobs_running.")) {
      monalisa +=
          bus.series(key.site, key.name).time_average(from, to);
    }
    table.add_row({util::AsciiTable::percent(kill_fraction, 0),
                   util::AsciiTable::num(acdc, 1),
                   util::AsciiTable::num(monalisa, 1),
                   util::AsciiTable::num(
                       viewer.crosscheck_divergence(from, to), 3)});
  }
  table.print(std::cout);
  std::cout << "\nreading: with all paths healthy the two estimates track "
               "(divergence stays within sampling tolerance).  As site "
               "monitors die the MonALISA view silently undercounts -- "
               "only the crosscheck against the redundant ACDC path "
               "exposes it, which is why Grid3 kept both.\n";
  return 0;
}
