// Regenerates Figure 3: "Differential CPU usage (measured in
// time-averaged number of CPUs used) during the 30 day running period
// for SC2003, organized by VO."  Also checks the paper's April-2004
// claim of ~700 CPUs in daily use by the experiments.
#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace grid3;
  bench::header(
      "Figure 3: differential CPU usage by VO (SC2003, daily bins)",
      "Figure 3, section 6");

  auto run = bench::run_scenario(/*months=*/2);
  const auto viewer = (*run)->viewer();
  const auto w = apps::sc2003_window();
  constexpr std::size_t kBins = 30;  // daily bins over the 30-day window
  auto by_vo = viewer.differential_cpu_by_vo(w.from, w.to, kBins);
  by_vo.erase("local");  // the paper's figure shows grid usage only

  // Print the stacked series: one row per day, one column per VO.
  std::cout << "day |";
  for (const auto& [vo, series] : by_vo) {
    std::cout << std::setw(10) << vo;
  }
  std::cout << std::setw(10) << "total" << "\n";
  double peak_total = 0.0;
  for (std::size_t d = 0; d < kBins; ++d) {
    std::cout << std::setw(3) << d + 1 << " |";
    double total = 0.0;
    for (const auto& [vo, series] : by_vo) {
      std::cout << std::setw(10) << util::AsciiTable::num(series[d], 1);
      total += series[d];
    }
    peak_total = std::max(peak_total, total);
    std::cout << std::setw(10) << util::AsciiTable::num(total, 1) << "\n";
  }
  std::cout << "\npeak daily-binned CPUs in use: "
            << util::AsciiTable::num(peak_total, 0)
            << "  (paper: binned averages under-report the instantaneous "
               "1300-job peak)\n";
  const double instantaneous = viewer.peak_concurrent_jobs(w.from, w.to);
  std::cout << "instantaneous peak concurrent jobs: "
            << util::AsciiTable::num(instantaneous, 0)
            << "  (paper: 1300 on 11/20/03; binned < instantaneous: "
            << (peak_total < instantaneous ? "YES" : "NO") << ")\n";
  bench::scale_note();
  return 0;
}
