// Regenerates Figure 6: "Distribution of the number of jobs run on
// Grid3 by month starting from October 2003" -- the ramp-up through late
// 2003 and the sustained production plateau into 2004 that the paper
// reads as evidence a persistent grid raises total output.
#include <iostream>

#include "bench_common.h"

#include "util/calendar.h"

int main() {
  using namespace grid3;
  bench::header("Figure 6: jobs run on Grid3 by month",
                "Figure 6, section 6.4");

  constexpr int kMonths = 7;  // Oct 2003 .. Apr 2004
  auto run = bench::run_scenario(kMonths);
  const auto jobs = (*run)->viewer().jobs_by_month(kMonths);
  const auto labels = util::month_labels(kMonths);

  std::vector<std::pair<std::string, double>> chart;
  for (int m = 0; m < kMonths; ++m) {
    chart.emplace_back(labels[static_cast<std::size_t>(m)],
                       static_cast<double>(jobs[static_cast<std::size_t>(m)]));
  }
  std::cout << util::bar_chart(chart, 48, "jobs") << "\n";

  // Shape checks: ramp in 2003, sustained (non-collapsing) 2004.
  const auto oct = static_cast<double>(jobs[0]);
  const auto nov = static_cast<double>(jobs[1]);
  double sustained_2004 = 0.0;
  for (int m = 3; m < kMonths; ++m) {
    sustained_2004 += static_cast<double>(jobs[static_cast<std::size_t>(m)]);
  }
  sustained_2004 /= (kMonths - 3);
  std::cout << "ramp into SC2003 (Nov >> Oct): "
            << (nov > 2.0 * oct ? "YES" : "NO") << "\n"
            << "sustained 2004 production (avg "
            << util::AsciiTable::num(sustained_2004, 0)
            << " jobs/month > Oct ramp-up): "
            << (sustained_2004 > oct ? "YES" : "NO")
            << "  (paper: \"a more sustained production rate appears in "
               "2004\")\n";
  bench::scale_note();
  return 0;
}
