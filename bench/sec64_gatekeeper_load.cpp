// Regenerates the section 6.4 gatekeeper-load analysis: "a typical
// gatekeeper using a queue manager will experience a sustained one
// minute load of ~225 when managing ~1000 computational jobs.  This load
// can sharply increase when the job submission frequency is high ...
// For computational jobs that only require a minimal amount of
// production node file staging, a factor of two can be applied to the
// sustained load; on the other hand computational jobs requiring a
// substantial amount of file staging the factor can increase to three
// or four."
#include <iostream>

#include "batch/scheduler.h"
#include "bench_common.h"
#include "gram/gatekeeper.h"
#include "gridftp/gridftp.h"
#include "net/network.h"
#include "vo/gridmap.h"

namespace {

using namespace grid3;

struct Harness {
  sim::Simulation sim;
  net::Network net{sim};
  gridftp::GridFtpClient ftp_client{sim, net};
  vo::CertificateAuthority ca{"CA"};
  vo::VomsServer voms{"vo"};
  vo::GridMapFile gridmap;
  srm::DiskVolume scratch{"s:/scratch", Bytes::tb(500)};
  net::NodeId node = net.add_node({"S", Bandwidth::gbps(10),
                                   Bandwidth::gbps(10), true});
  net::NodeId data = net.add_node({"D", Bandwidth::gbps(10),
                                   Bandwidth::gbps(10), true});
  gridftp::GridFtpServer ftp{"S", node};
  gridftp::GridFtpServer data_ftp{"D", data};
  batch::SchedulerConfig cfg{.site_name = "S", .slots = 4000,
                             .max_walltime = Time::hours(2000)};
  batch::PbsScheduler lrms{sim, cfg};
  gram::GatekeeperConfig gkc{.site = "S",
                             .overload_threshold = 1e9};  // observe, not shed
  gram::Gatekeeper gk{sim, gkc, lrms, gridmap, ca, ftp_client, ftp, scratch};
  vo::VomsProxy proxy;

  Harness() {
    const auto cert = ca.issue("/CN=a", sim.now(), Time::days(999));
    voms.add_member("/CN=a", vo::Role::kAppAdmin);
    gridmap.support_vo("vo", {"vo1", "vo"});
    gridmap.regenerate({&voms}, sim.now());
    proxy = *vo::issue_proxy(voms, cert, sim.now(), Time::days(30));
  }

  /// Spread `jobs` long submissions over 30 minutes with the given
  /// staging volume, then read the sustained 1-minute load.
  double sustained_load(int jobs, Bytes stage_in) {
    for (int i = 0; i < jobs; ++i) {
      sim.schedule_in(Time::seconds(1800.0 * i / jobs), [this, stage_in] {
        gram::GramJob job;
        job.proxy = proxy;
        job.request.vo = "vo";
        job.request.user_dn = "/CN=a";
        job.request.actual_runtime = Time::hours(500);
        job.request.requested_walltime = Time::hours(600);
        if (stage_in > Bytes::zero()) {
          job.stage_in = stage_in;
          job.stage_in_source = &data_ftp;
        }
        gk.submit(std::move(job), {});
      });
    }
    sim.run_until(sim.now() + Time::minutes(35));
    return gk.one_minute_load();
  }
};

}  // namespace

int main() {
  using grid3::util::AsciiTable;
  grid3::bench::header("Section 6.4: gatekeeper load model",
                       "section 6.4 load analysis");

  AsciiTable table{{"managed jobs", "staging class", "paper load",
                    "measured 1-min load"}};
  struct Case {
    int jobs;
    grid3::Bytes staging;
    const char* cls;
    const char* paper;
  };
  const Case cases[] = {
      {250, grid3::Bytes::zero(), "none", "~56 (0.225/job)"},
      {500, grid3::Bytes::zero(), "none", "~113"},
      {1000, grid3::Bytes::zero(), "none", "~225"},
      {2000, grid3::Bytes::zero(), "none", "~450"},
      {1000, grid3::Bytes::mb(100), "minimal (x2)", "~450"},
      {1000, grid3::Bytes::gb(2), "substantial (x3)", "~675"},
      {1000, grid3::Bytes::gb(6), "heavy (x4)", "~900"},
  };
  for (const Case& c : cases) {
    Harness h;
    const double load = h.sustained_load(c.jobs, c.staging);
    table.add_row({AsciiTable::integer(c.jobs), c.cls, c.paper,
                   AsciiTable::num(load, 1)});
  }
  table.print(std::cout);

  // Burst sensitivity: same 1000 jobs submitted in one minute instead of
  // thirty ("load can sharply increase when the job submission frequency
  // is high").
  Harness slow;
  const double sustained = slow.sustained_load(1000, grid3::Bytes::zero());
  Harness fast;
  for (int i = 0; i < 1000; ++i) {
    fast.sim.schedule_in(grid3::Time::seconds(0.05 * i), [&fast] {
      grid3::gram::GramJob job;
      job.proxy = fast.proxy;
      job.request.vo = "vo";
      job.request.user_dn = "/CN=a";
      job.request.actual_runtime = grid3::Time::hours(500);
      job.request.requested_walltime = grid3::Time::hours(600);
      fast.gk.submit(std::move(job), {});
    });
  }
  fast.sim.run_until(grid3::Time::seconds(51));
  std::cout << "\nsubmission-frequency sensitivity:\n"
            << "  1000 jobs over 30 min -> sustained load "
            << AsciiTable::num(sustained, 1) << "\n"
            << "  1000 jobs in 50 s     -> peak load "
            << AsciiTable::num(fast.gk.one_minute_load(), 1)
            << "  (paper: sharply increases with high submit frequency)\n";
  return 0;
}
