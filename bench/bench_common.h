// Shared plumbing for the reproduction benches: each binary regenerates
// one table/figure of the paper, printing the paper's reported values
// next to the values measured from the simulated grid.
//
// Environment knobs:
//   GRID3_JOB_SCALE  scale workload volumes (default 1.0 = the paper's
//                    291k-job accounting sample; smaller = faster)
//   GRID3_CPU_SCALE  scale site sizes (default 1.0 = ~2800 CPUs)
//   GRID3_SEED       scenario seed (default 20031025)
//   GRID3_BENCH_QUICK  any non-empty value = CI smoke mode: reduced
//                    horizons/workload so each ablation finishes in
//                    seconds while its acceptance verdict stays valid
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "apps/scenario.h"
#include "util/table.h"

namespace grid3::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline double job_scale() { return env_double("GRID3_JOB_SCALE", 1.0); }
inline double cpu_scale() { return env_double("GRID3_CPU_SCALE", 1.0); }
inline std::uint64_t seed() {
  return static_cast<std::uint64_t>(env_double("GRID3_SEED", 20031025));
}

/// CI smoke mode: reduced horizons, same acceptance semantics.
inline bool quick() {
  const char* v = std::getenv("GRID3_BENCH_QUICK");
  return v != nullptr && *v != '\0';
}

/// Pick the full-run or quick-run value of a bench knob.
template <typename T>
inline T quick_or(T full, T reduced) {
  return quick() ? reduced : full;
}

/// A scenario run bundled with its simulation clock.
struct ScenarioRun {
  sim::Simulation sim;
  std::unique_ptr<apps::Scenario> scenario;

  apps::Scenario& operator*() { return *scenario; }
  apps::Scenario* operator->() { return scenario.get(); }
};

/// Run `months` of Grid2003 operations at the configured scales.
inline std::unique_ptr<ScenarioRun> run_scenario(int months) {
  auto run = std::make_unique<ScenarioRun>();
  apps::ScenarioOptions opts;
  opts.months = months;
  opts.job_scale = job_scale();
  opts.cpu_scale = cpu_scale();
  opts.seed = seed();
  std::cout << "[scenario] months=" << months
            << " job_scale=" << opts.job_scale
            << " cpu_scale=" << opts.cpu_scale << " seed=" << opts.seed
            << " ... " << std::flush;
  run->scenario = std::make_unique<apps::Scenario>(run->sim, opts);
  run->scenario->run();
  std::cout << "done (" << run->sim.executed() << " events, "
            << run->scenario->grid().igoc().job_db().size()
            << " job records)\n\n";
  return run;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==================================================\n"
            << title << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "==================================================\n";
}

/// Footnote reminding readers how to compare against the paper when the
/// run is scaled down.
inline void scale_note() {
  if (job_scale() != 1.0) {
    std::cout << "\nnote: job_scale=" << job_scale()
              << "; compare paper job counts against measured / "
              << job_scale() << "\n";
  }
}

}  // namespace grid3::bench
