// Regenerates the section 6.3 GridFTP data-transfer demonstrator: "We
// met our goal of transferring 2 TB across Grid3 per day, and
// long-running data transfers ran reliably.  Issues of account
// privileges, ports, and firewalls caused the main problems in
// deployment and configuration."
//
// This bench runs the Entrada matrix generator alone on the full fabric
// for ten days, including a firewall-misconfiguration phase, and reads
// reliability out of the NetLogger event stream.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace grid3;
  bench::header("Section 6.3: GridFTP data-transfer demonstrator",
                "section 6.3 narrative metrics");

  sim::Simulation sim;
  core::Grid3 grid{sim, bench::seed()};
  core::AssembleOptions opts;
  opts.cpu_scale = bench::cpu_scale();
  auto assembled = core::assemble_grid3(grid, opts);

  apps::EntradaDemo::Options en;
  en.months = 1;
  en.sc2003_per_day = 200.0;
  apps::EntradaDemo entrada{grid, en};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "ivdgl") entrada.set_users(vu.app_admins, vu.users);
  }

  // Deployment-phase problems: a few closed firewall routes, fixed after
  // two days (the section 6.3 "ports and firewalls" issues).
  auto& net = grid.network();
  const auto& sites = grid.sites();
  for (std::size_t i = 0; i + 1 < sites.size() && i < 6; i += 2) {
    net.block_route(sites[i]->node(), sites[i + 1]->node());
  }
  sim.schedule_at(Time::days(2), [&] {
    for (std::size_t i = 0; i + 1 < sites.size() && i < 6; i += 2) {
      net.unblock_route(sites[i]->node(), sites[i + 1]->node());
    }
  });

  entrada.start();
  sim.run_until(Time::days(10));
  entrada.stop();

  const auto& logger = grid.netlogger();
  const auto counts = logger.counts_by_event();
  auto count = [&](const char* e) {
    auto it = counts.find(e);
    return it == counts.end() ? std::size_t{0} : it->second;
  };

  util::AsciiTable table{{"metric", "paper", "measured"}};
  table.add_row({"TB per day", "2-3 target, 4 achieved",
                 util::AsciiTable::num(entrada.moved().to_tb() / 10.0, 2)});
  const double reliability =
      entrada.transfers_ok() + entrada.transfers_failed() > 0
          ? static_cast<double>(entrada.transfers_ok()) /
                static_cast<double>(entrada.transfers_ok() +
                                    entrada.transfers_failed())
          : 0.0;
  table.add_row({"long-running transfer reliability", "ran reliably",
                 util::AsciiTable::percent(reliability)});
  table.add_row({"netlogger transfer.start events", "(instrumented)",
                 util::AsciiTable::integer(
                     static_cast<std::int64_t>(count("transfer.start")))});
  table.add_row({"netlogger transfer.error events",
                 "mainly ports/firewalls during deployment",
                 util::AsciiTable::integer(
                     static_cast<std::int64_t>(count("transfer.error")))});
  table.add_row({"netlogger retry events", "(retry on interruption)",
                 util::AsciiTable::integer(
                     static_cast<std::int64_t>(count("transfer.retry")))});
  table.print(std::cout);

  std::cout << "\nfirewall-phase failures clear after day 2 (deployment "
               "problems, then reliable operation) -- errors by day:\n";
  std::vector<std::size_t> by_day(10, 0);
  for (const auto& e : logger.events()) {
    if (e.event == "transfer.error") {
      const auto d = static_cast<std::size_t>(e.t.to_days());
      if (d < by_day.size()) ++by_day[d];
    }
  }
  for (std::size_t d = 0; d < by_day.size(); ++d) {
    std::cout << "  day " << d + 1 << ": " << by_day[d] << "\n";
  }
  return 0;
}
