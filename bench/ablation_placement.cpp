// Ablation E: stage-out leases vs discover-at-stage-out (section 6.1
// lists "disk space exhausted at the destination" among the top
// storage-related failure causes; section 8 names data placement as a
// missing grid-level service).  One binary replays the same archive-bound
// workload twice -- with the placement ledger acquiring SRM space before
// the broker binds, and without (the status quo: a full archive disk is
// discovered only after the job has burned its CPU and attempts its
// stage-out).
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "broker/broker.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "pacman/vdt.h"
#include "placement/ledger.h"
#include "workflow/dagman.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace {

using namespace grid3;

const int kWorkflows = bench::quick_or(48, 16);
const int kHorizonDays = bench::quick_or(4, 2);
const Bytes kOutput = Bytes::gb(8);

struct Outcome {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::uint64_t no_space = 0;       // stage-outs that hit a full archive
  std::uint64_t storage_holds = 0;  // matches parked awaiting space
  std::uint64_t rebinds = 0;
  std::uint64_t leases_acquired = 0;
  std::uint64_t leases_rejected = 0;
};

Outcome run_mode(bool leases) {
  sim::Simulation sim;
  core::Grid3 grid{sim, bench::seed()};
  std::cout << "[mode " << (leases ? "stage-out leases" : "no leases")
            << "] running ... " << std::flush;
  grid.add_vo("uscms");
  pacman::add_application_package(grid.igoc().pacman_cache(), "mop",
                                  Time::minutes(5));
  // Three dedicated T2 execution sites and one small archive SE: the
  // tape-fronting disk at FNAL is deliberately smaller than the
  // workload's steady-state demand, so placement contention is real.
  const std::vector<std::string> exec_sites{"T2_A", "T2_B", "T2_C"};
  for (const std::string& name : exec_sites) {
    core::SiteConfig c;
    c.name = name;
    c.owner_vo = "uscms";
    c.cpus = 24;
    c.policy.max_walltime = Time::hours(48);
    c.policy.dedicated = true;
    grid.add_site(c, /*reliability=*/1000.0);
    grid.site(name)->install_application(grid.igoc().pacman_cache(), "mop");
  }
  core::SiteConfig fnal;
  fnal.name = "FNAL";
  fnal.owner_vo = "uscms";
  fnal.cpus = 2;
  fnal.disk = Bytes::gb(120);
  fnal.deploy_srm = true;
  fnal.policy.dedicated = true;
  grid.add_site(fnal, /*reliability=*/1000.0);

  const vo::Certificate cert =
      grid.add_user("uscms", "producer", vo::Role::kAppAdmin);
  const vo::VomsProxy proxy = *grid.make_proxy(cert, "uscms",
                                               Time::hours(400));
  const std::vector<const vo::VomsServer*> servers{grid.voms("uscms")};
  for (const std::string& name : exec_sites) {
    grid.site(name)->refresh_gridmap(servers);
    grid.site(name)->gatekeeper().set_submission_flake_rate(0.0);
    grid.site(name)->gatekeeper().set_environment_error_rate(0.0);
  }
  grid.site("FNAL")->refresh_gridmap(servers);

  broker::BrokerConfig bcfg;
  bcfg.placement_leases = leases;
  grid.attach_broker("uscms", broker::PolicyKind::kQueueDepth, bcfg);
  grid.start_operations();
  sim.run_until(Time::minutes(1));

  Outcome out;
  std::size_t plan_failures = 0;
  auto submit = [&](int i) {
    workflow::VirtualDataCatalog vdc;
    vdc.add_transformation({"mop", "1", "mop"});
    workflow::Derivation d;
    d.id = "w" + std::to_string(i);
    d.transformation = "mop";
    d.outputs = {"out" + std::to_string(i)};
    d.runtime = Time::minutes(90);
    d.output_size = kOutput;
    d.scratch = Bytes::gb(1);
    vdc.add_derivation(d);
    workflow::PegasusPlanner planner{grid.igoc().top_giis(),
                                     *grid.rls("uscms")};
    planner.set_broker(grid.broker("uscms"));
    workflow::PlannerConfig cfg;
    cfg.vo = "uscms";
    cfg.archive_site = "FNAL";
    util::Rng rng{static_cast<std::uint64_t>(1000 + i)};
    auto plan = planner.plan(*vdc.request(d.outputs), cfg, rng, sim.now());
    if (!plan.has_value()) {
      ++plan_failures;
      return;
    }
    grid.dagman("uscms").run(
        std::move(*plan), proxy, [&](const workflow::DagRunStats& s) {
          if (s.success) {
            ++out.completed;
            // Tape migration drains the archive disk a few hours after
            // the output lands (symmetric across both modes).
            sim.schedule_in(Time::hours(4), [&] {
              grid.volume("FNAL")->release(kOutput);
            });
          } else {
            ++out.failed;
          }
        });
  };
  // One 8 GB producer every 15 minutes: ~32 GB/h of archive inflow
  // against a 120 GB disk draining on a 4-hour tape delay.
  for (int i = 0; i < kWorkflows; ++i) {
    sim.schedule_in(Time::minutes(15) * i, [&submit, i] { submit(i); });
  }
  sim.run_until(sim.now() + Time::days(kHorizonDays));

  for (const std::string& name : exec_sites) {
    out.no_space += grid.site(name)->gatekeeper().stage_out_no_space();
  }
  const broker::ResourceBroker* b = grid.broker("uscms");
  out.storage_holds = b->storage_holds();
  out.rebinds = b->rebinds();
  if (const placement::PlacementLedger* l = grid.placement("uscms")) {
    out.leases_acquired = l->acquired();
    out.leases_rejected = l->rejected();
  }
  std::cout << "done (" << sim.executed() << " events, " << out.completed
            << "/" << kWorkflows << " workflows";
  if (plan_failures > 0) std::cout << ", " << plan_failures << " unplanned";
  std::cout << ")\n";
  return out;
}

}  // namespace

int main() {
  using grid3::util::AsciiTable;
  grid3::bench::header(
      "Ablation E: stage-out leases vs discover-at-stage-out placement",
      "sections 6.1 + 8: storage failure causes, data placement service");

  const Outcome base = run_mode(/*leases=*/false);
  const Outcome leased = run_mode(/*leases=*/true);

  AsciiTable table{{"placement", "completed", "failed", "stage-out no-space",
                    "storage holds", "rebinds", "leases", "lease rejects"}};
  const auto row = [&](const std::string& label, const Outcome& o) {
    table.add_row({label,
                   AsciiTable::integer(static_cast<long>(o.completed)),
                   AsciiTable::integer(static_cast<long>(o.failed)),
                   AsciiTable::integer(static_cast<long>(o.no_space)),
                   AsciiTable::integer(static_cast<long>(o.storage_holds)),
                   AsciiTable::integer(static_cast<long>(o.rebinds)),
                   AsciiTable::integer(static_cast<long>(o.leases_acquired)),
                   AsciiTable::integer(static_cast<long>(o.leases_rejected))});
  };
  row("no leases (stage-out discovers)", base);
  row("stage-out leases (reserve first)", leased);
  std::cout << '\n';
  table.print(std::cout);

  const bool fewer_no_space = leased.no_space < base.no_space;
  const bool no_worse_completion = leased.completed >= base.completed;
  std::cout << "\nacceptance: leased stage-out no-space failures "
            << leased.no_space << " vs baseline " << base.no_space << " -> "
            << (fewer_no_space ? "FEWER" : "NOT FEWER") << "; completions "
            << leased.completed << " vs " << base.completed << " -> "
            << (no_worse_completion ? "NO WORSE" : "WORSE") << '\n';
  std::cout
      << "\nreading: without leases the archive disk's state is invisible "
         "to matchmaking, so every job runs its 90 minutes before the "
         "stage-out bounces off the full SE, is rebound, and reruns -- "
         "compute burned to discover a storage fact.  With leases the "
         "broker reserves SRM space at the destination before binding: "
         "jobs that cannot land their output are parked (storage holds) "
         "until tape migration drains the disk, and every stage-out that "
         "does run has its space guaranteed.\n";
  grid3::bench::scale_note();
  return (fewer_no_space && no_worse_completion) ? 0 : 1;
}
