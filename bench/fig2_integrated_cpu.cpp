// Regenerates Figure 2: "Integrated CPU usage (CPU-days) during the 30
// day running for SC2003, by VO."  The 30-day window starts October 25,
// 2003.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace grid3;
  bench::header("Figure 2: integrated CPU usage by VO (SC2003 30 days)",
                "Figure 2, section 6");

  auto run = bench::run_scenario(/*months=*/2);
  const auto viewer = (*run)->viewer();
  const auto w = apps::sc2003_window();
  auto fig2 = viewer.integrated_cpu_days_by_vo(w.from, w.to);
  // Drop local (non-grid) load from the figure, as the paper's did.
  std::erase_if(fig2, [](const auto& p) { return p.first == "local"; });

  std::vector<std::pair<std::string, double>> chart{fig2.begin(), fig2.end()};
  std::cout << util::bar_chart(chart, 48, "CPU-days") << "\n";

  std::cout << "shape checks vs the paper:\n";
  auto value_of = [&](const std::string& vo) {
    for (const auto& [name, v] : fig2) {
      if (name == vo) return v;
    }
    return 0.0;
  };
  const double cms = value_of("uscms");
  const double atlas = value_of("usatlas");
  const double ivdgl = value_of("ivdgl");
  std::cout << "  USCMS leads integrated CPU (paper: CMS dominates): "
            << (cms >= atlas && cms >= ivdgl ? "YES" : "NO") << "\n"
            << "  both LHC experiments ran at production scale: "
            << (atlas > 50.0 * bench::job_scale() ? "YES" : "NO") << "\n"
            << "  paper peak-month CPU-days for scale: USCMS 1981.95, "
               "iVDGL 1244.97, USATLAS 696.48 (Table 1)\n";
  bench::scale_note();
  return 0;
}
