// Ablation C: local-scheduler policy comparison (Grid3 ran OpenPBS,
// Condor, and LSF behind identical GRAM interfaces, section 5).  The
// same mixed multi-VO workload -- long production, short analysis,
// backfill probes -- is replayed against each policy.
#include <iostream>
#include <map>
#include <memory>

#include "batch/scheduler.h"
#include "bench_common.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace {

using namespace grid3;

struct Outcome {
  int completed = 0;
  int walltime_killed = 0;
  int rejected = 0;
  double wait_hours = 0.0;       // production queue wait
  int backfill_completed = 0;
  std::map<std::string, double> cpu_by_vo;
};

Outcome replay(batch::BatchScheduler& sched, sim::Simulation& sim,
               std::uint64_t seed) {
  util::Rng rng{seed};
  Outcome out;
  // 600 jobs over 20 days: 3 VOs, bimodal runtimes, 15% backfill probes.
  for (int i = 0; i < 600; ++i) {
    batch::JobRequest req;
    const bool probe = rng.chance(0.15);
    req.vo = probe ? "exerciser" : "vo" + std::to_string(i % 3);
    const double runtime =
        probe ? rng.uniform(0.05, 0.3)
              : (rng.chance(0.3) ? rng.uniform(20.0, 60.0)
                                 : rng.uniform(0.5, 4.0));
    req.actual_runtime = Time::hours(runtime);
    // Users underestimate ~15% of the time (walltime kills on enforcing
    // schedulers).
    req.requested_walltime = Time::hours(
        rng.chance(0.15) ? runtime * rng.uniform(0.5, 0.95)
                         : runtime * rng.uniform(1.1, 2.0));
    req.priority = probe ? -1 : 0;
    const Time at = Time::hours(rng.uniform(0.0, 480.0));
    sim.schedule_at(at, [&, req, probe] {
      sched.submit(req, [&, probe](const batch::JobOutcome& o) {
        switch (o.state) {
          case batch::JobState::kCompleted:
            if (probe) {
              ++out.backfill_completed;
            } else {
              ++out.completed;
              out.wait_hours += (o.started - o.submitted).to_hours();
            }
            out.cpu_by_vo[o.vo] += o.cpu_used().to_days();
            break;
          case batch::JobState::kKilledWalltime:
            ++out.walltime_killed;
            break;
          case batch::JobState::kRejected:
            ++out.rejected;
            break;
          default:
            break;
        }
      });
    });
  }
  sim.run();
  return out;
}

}  // namespace

int main() {
  using grid3::util::AsciiTable;
  grid3::bench::header("Ablation C: Condor vs OpenPBS vs LSF policies",
                       "section 5: heterogeneous local schedulers");

  AsciiTable table{{"LRMS", "completed", "walltime-killed", "rejected",
                    "avg wait (h)", "backfill done", "VO CPU spread"}};
  for (const char* lrms : {"condor", "pbs", "lsf"}) {
    sim::Simulation sim;
    batch::SchedulerConfig cfg;
    cfg.site_name = "ablation";
    cfg.slots = 64;
    cfg.max_walltime = grid3::Time::hours(48);
    std::unique_ptr<batch::BatchScheduler> sched;
    if (std::string{lrms} == "condor") {
      sched = std::make_unique<batch::CondorScheduler>(sim, cfg);
    } else if (std::string{lrms} == "pbs") {
      sched = std::make_unique<batch::PbsScheduler>(sim, cfg);
    } else {
      sched = std::make_unique<batch::LsfScheduler>(sim, cfg);
    }
    const auto out = replay(*sched, sim, 42);
    // Fairness: max/min CPU-days across the three production VOs.
    double lo = 1e18, hi = 0.0;
    for (const auto& [vo, days] : out.cpu_by_vo) {
      if (vo == "exerciser") continue;
      lo = std::min(lo, days);
      hi = std::max(hi, days);
    }
    table.add_row(
        {lrms, AsciiTable::integer(out.completed),
         AsciiTable::integer(out.walltime_killed),
         AsciiTable::integer(out.rejected),
         AsciiTable::num(out.completed
                             ? out.wait_hours / out.completed
                             : 0.0,
                         2),
         AsciiTable::integer(out.backfill_completed),
         "max/min=" + AsciiTable::num(lo > 0 ? hi / lo : 0.0, 2)});
  }
  table.print(std::cout);
  std::cout
      << "\nreading: Condor never walltime-kills (jobs run to completion) "
         "and fair-share keeps the VO CPU spread tightest; PBS/LSF enforce "
         "requested walltime, trading killed jobs for predictable queues; "
         "LSF's capped long queue keeps short jobs flowing.  Grid3 ran all "
         "three behind the same GRAM interface -- the grid absorbs the "
         "policy differences.\n";
  return 0;
}
