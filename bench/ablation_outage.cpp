// Ablation H: collective-service outages with graceful degradation vs
// the naive baseline (section 5's central services -- the iGOC index,
// the per-VO RLS -- and section 6's operations reality: services fail,
// and the grid must keep scheduling).  One binary replays the same job
// stream three times:
//
//   baseline  degraded stack, calm weather (no outages)
//   degraded  stale-view brokering + write-ahead registration journal,
//             under an ops-calendar outage storm
//   naive     the same storm with both mitigations off: an index outage
//             empties the broker view (submissions are rejected) and
//             registrations against the down catalog are dropped
//
// The storm itself is deterministic: scheduled-downtime windows on two
// collective bundles (the iGOC top index; the VO RLS), no RNG.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "broker/broker.h"
#include "core/failure.h"
#include "core/grid3.h"
#include "core/site.h"
#include "pacman/vdt.h"
#include "rls/rls.h"

namespace {

using namespace grid3;

const Time kJobRuntime = Time::minutes(20);
const Time kSubmitEvery = Time::minutes(2);
// GIIS windows sit inside the broker's 30-min default staleness bound?
// No -- the bench raises the bound to 1 h so a 45-min maintenance
// window is survivable on the frozen view, as the ops calendar would
// plan it.
const Time kStaleBound = Time::hours(1);
const Time kGiisWindow = Time::minutes(45);
const Time kRlsWindow = Time::minutes(40);

struct Outcome {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t registered = 0;      // registrations attempted (job done)
  std::size_t visible = 0;         // LFNs locatable at the end
  std::size_t lost = 0;            // dropped by the naive write path
  std::size_t journal_pending = 0;
  std::size_t journal_replayed = 0;
  std::uint64_t stale_matches = 0;
  std::size_t downtime_windows = 0;
};

Outcome run_mode(const char* label, bool storm, bool naive) {
  const int jobs = bench::quick_or(300, 90);
  sim::Simulation sim;
  core::Grid3 grid{sim, bench::seed()};
  std::cout << "[mode " << label << "] running ... " << std::flush;
  grid.add_vo("usatlas");
  pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                  Time::minutes(5));
  const std::vector<std::pair<std::string, int>> sites{
      {"alpha", 48}, {"beta", 24}, {"gamma", 24}, {"delta", 24}};
  for (const auto& [name, cpus] : sites) {
    core::SiteConfig c;
    c.name = name;
    c.owner_vo = "usatlas";
    c.cpus = cpus;
    c.policy.max_walltime = Time::hours(48);
    c.policy.dedicated = true;
    grid.add_site(c, /*reliability=*/1000.0);
    grid.site(name)->install_application(grid.igoc().pacman_cache(), "app");
    grid.site(name)->gatekeeper().set_submission_flake_rate(0.0);
    grid.site(name)->gatekeeper().set_environment_error_rate(0.0);
  }
  const vo::Certificate cert =
      grid.add_user("usatlas", "producer", vo::Role::kAppAdmin);
  const vo::VomsProxy proxy =
      *grid.make_proxy(cert, "usatlas", Time::hours(800));
  const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
  for (const auto& [name, cpus] : sites) {
    grid.site(name)->refresh_gridmap(servers);
  }
  broker::BrokerConfig bcfg;
  bcfg.stale_view_max = naive ? Time::zero() : kStaleBound;
  grid.attach_broker("usatlas", broker::PolicyKind::kQueueDepth, bcfg);
  rls::ReplicaLocationService* rls = grid.rls("usatlas");
  rls->set_journal_enabled(!naive);

  // Collective bundles the ops calendar can target.  All-zero rates:
  // no Poisson process is armed, the windows below are the only storm.
  grid.failures().attach_collective(
      "top-index", {.giis = &grid.igoc().top_giis()}, {});
  grid.failures().attach_collective("usatlas-rls", {.rls = rls}, {});

  grid.start_operations();
  sim.run_until(Time::minutes(6));

  Outcome out;
  const Time submit_start = sim.now();
  const Time submit_end = submit_start + kSubmitEvery * jobs;
  if (storm) {
    // Alternating maintenance windows across the submission span: the
    // index goes down at 20% and 60% of the span, the RLS at 40% and
    // 80%.  Every window fits the raised staleness bound.
    const Time span = submit_end - submit_start;
    const auto at = [&](double frac) {
      return submit_start + Time::seconds(span.to_seconds() * frac);
    };
    for (const double frac : {0.2, 0.6}) {
      grid.failures().schedule_downtime({"top-index", at(frac), kGiisWindow});
      ++out.downtime_windows;
    }
    for (const double frac : {0.4, 0.8}) {
      grid.failures().schedule_downtime({"usatlas-rls", at(frac), kRlsWindow});
      ++out.downtime_windows;
    }
  }

  // The job stream; every completion registers its output replica, the
  // step Grid3's registration scripts ran from the worker node.
  std::vector<std::string> lfns;
  for (int i = 0; i < jobs; ++i) {
    sim.schedule_in(submit_start - sim.now() + kSubmitEvery * i, [&, i] {
      broker::JobSpec spec;
      spec.vo = "usatlas";
      spec.app = "app";
      spec.required_app = "app";
      spec.runtime = kJobRuntime;
      gram::GramJob job;
      job.proxy = proxy;
      job.request.vo = "usatlas";
      job.request.user_dn = proxy.identity.subject_dn;
      job.request.requested_walltime = kJobRuntime + Time::hours(1);
      job.request.actual_runtime = kJobRuntime;
      grid.broker("usatlas")->submit(
          spec, std::move(job), [&, i](const broker::BrokeredResult& r) {
            if (!r.ok()) {
              ++out.failed;
              return;
            }
            ++out.completed;
            const std::string lfn = "out-" + std::to_string(i);
            rls::Replica rep;
            rep.pfn = "gsiftp://" + r.site + "/" + lfn;
            rep.size = Bytes::mb(100);
            rep.registered = sim.now();
            rls->register_replica(r.site, lfn, std::move(rep), sim.now());
            lfns.push_back(lfn);
            ++out.registered;
          });
    });
  }
  sim.run_until(submit_end + Time::hours(3));

  for (const std::string& lfn : lfns) {
    if (!rls->locate(lfn, sim.now()).empty()) ++out.visible;
  }
  out.lost = rls->lost_registrations();
  out.journal_pending = rls->journal().pending();
  out.journal_replayed = rls->journal().replayed();
  out.stale_matches = grid.broker("usatlas")->stale_matches();
  std::cout << "done (" << sim.executed() << " events, " << out.completed
            << "/" << jobs << " jobs)\n";
  return out;
}

}  // namespace

int main() {
  using grid3::util::AsciiTable;
  grid3::bench::header(
      "Ablation H: collective-service outages with graceful degradation",
      "section 5 central services + section 6 operations: index and "
      "catalog outages vs stale-view brokering and the WAL journal");

  const Outcome base = run_mode("baseline (no outages)", false, false);
  const Outcome degraded = run_mode("degraded (storm)", true, false);
  const Outcome naive = run_mode("naive (storm)", true, true);

  AsciiTable table{{"mode", "completed", "failed", "registered", "visible",
                    "lost regs", "journal pending", "replayed",
                    "stale matches"}};
  const auto row = [&](const std::string& label, const Outcome& o) {
    table.add_row({label, AsciiTable::integer(static_cast<long>(o.completed)),
                   AsciiTable::integer(static_cast<long>(o.failed)),
                   AsciiTable::integer(static_cast<long>(o.registered)),
                   AsciiTable::integer(static_cast<long>(o.visible)),
                   AsciiTable::integer(static_cast<long>(o.lost)),
                   AsciiTable::integer(static_cast<long>(o.journal_pending)),
                   AsciiTable::integer(static_cast<long>(o.journal_replayed)),
                   AsciiTable::integer(static_cast<long>(o.stale_matches))});
  };
  row("baseline", base);
  row("degraded", degraded);
  row("naive", naive);
  std::cout << '\n';
  table.print(std::cout);

  const double floor = 0.9 * static_cast<double>(base.completed);
  const bool holds_up = static_cast<double>(degraded.completed) >= floor;
  const bool nothing_lost = degraded.lost == 0 &&
                            degraded.journal_pending == 0 &&
                            degraded.visible == degraded.registered;
  const bool mitigations_used =
      degraded.stale_matches > 0 && degraded.journal_replayed > 0;
  const bool naive_loses_jobs = naive.completed < degraded.completed;
  const bool naive_loses_regs = naive.lost > 0;
  std::cout << "\nacceptance: degraded completions " << degraded.completed
            << " vs baseline " << base.completed << " -> "
            << (holds_up ? ">=90%" : "<90%") << "; degraded lost "
            << degraded.lost << " pending " << degraded.journal_pending
            << " visible " << degraded.visible << "/" << degraded.registered
            << " -> " << (nothing_lost ? "NOTHING LOST" : "REGS LOST")
            << "; stale matches " << degraded.stale_matches << " replayed "
            << degraded.journal_replayed << " -> "
            << (mitigations_used ? "MITIGATIONS EXERCISED" : "IDLE")
            << "; naive " << naive.completed << " completions / "
            << naive.lost << " lost regs -> "
            << (naive_loses_jobs && naive_loses_regs ? "NAIVE LOSES BOTH"
                                                     : "NAIVE NOT WORSE")
            << '\n';
  std::cout << "result-json: {\"baseline_completed\": " << base.completed
            << ", \"degraded_completed\": " << degraded.completed
            << ", \"naive_completed\": " << naive.completed
            << ", \"degraded_lost\": " << degraded.lost
            << ", \"naive_lost\": " << naive.lost
            << ", \"degraded_pending\": " << degraded.journal_pending
            << ", \"degraded_replayed\": " << degraded.journal_replayed
            << ", \"degraded_visible\": " << degraded.visible
            << ", \"degraded_registered\": " << degraded.registered
            << ", \"stale_matches\": " << degraded.stale_matches << "}\n";
  std::cout
      << "\nreading: with the index down, a broker with no staleness "
         "budget sees an empty view and rejects everything submitted "
         "until the window ends, and registrations against the down "
         "catalog vanish silently -- the paper's operators rode these "
         "windows out by hand.  The degraded stack freezes the "
         "last-known-good view (rank-penalized, within a bounded "
         "staleness window) so matchmaking continues, journals every "
         "registration intent, and replays the journal exactly once on "
         "recovery: the storm costs a few percent of throughput and "
         "zero catalog entries.\n";
  grid3::bench::scale_note();
  return (holds_up && nothing_lost && mitigations_used && naive_loses_jobs &&
          naive_loses_regs)
             ? 0
             : 1;
}
