// Ablation D: resource-brokered placement vs the paper's favorite-sites
// status quo (section 6.4 lists overloaded gatekeepers among the top
// failure sources; section 8 names grid-level scheduling as the missing
// piece).  One binary replays the same multi-VO scenario under each
// placement mode and compares completion rate, failure mix, per-site CPU
// spread, and peak gatekeeper one-minute load.
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "broker/rank_policy.h"
#include "gram/gatekeeper.h"
#include "monitoring/acdc.h"
#include "workload/catalog.h"

namespace {

using namespace grid3;

struct Outcome {
  std::size_t jobs = 0;
  double completion = 0.0;        // completed / accounted jobs
  std::size_t overload = 0;       // kGatekeeperOverloaded failures
  std::size_t gk_down = 0;        // kGatekeeperDown failures
  std::size_t other_failed = 0;
  double cpu_spread = 0.0;        // max/median per-site CPU-days
  double peak_gk_load = 0.0;      // max over sites, lifetime
  std::uint64_t matches = 0;
  std::uint64_t rebinds = 0;
  std::uint64_t holds = 0;
};

Outcome run_mode(broker::PolicyKind kind) {
  // The base scenario is the catalog's sc2003-demo entry (two historical
  // months covering the conference burst; quick mode keeps both months
  // and thins the workload).  Only the placement mode under test varies.
  const workload::ScenarioSpec spec =
      workload::ScenarioCatalog::get("sc2003-demo", bench::seed());
  sim::Simulation sim;
  apps::ScenarioOptions opts = spec.options(bench::quick());
  opts.job_scale *= bench::job_scale();
  opts.cpu_scale = bench::cpu_scale();
  opts.broker_policy = kind;
  std::cout << "[mode " << broker::to_string(kind) << "] running ... "
            << std::flush;
  apps::Scenario scenario{sim, opts};
  scenario.run();

  Outcome out;
  auto& grid = scenario.grid();
  const auto& db = grid.igoc().job_db();
  const auto fs = db.failures("", Time::zero(), sim.now());
  out.jobs = fs.total;
  out.completion =
      fs.total > 0
          ? static_cast<double>(fs.total - fs.failed) /
                static_cast<double>(fs.total)
          : 0.0;
  for (const auto& [cls, n] : fs.by_class) {
    if (cls == gram::to_string(gram::GramStatus::kGatekeeperOverloaded)) {
      out.overload += n;
    } else if (cls == gram::to_string(gram::GramStatus::kGatekeeperDown)) {
      out.gk_down += n;
    } else {
      out.other_failed += n;
    }
  }

  // Per-site CPU-days across all VOs: how evenly the work spread.
  std::map<std::string, double> cpu_days;
  for (const auto& r : db.records()) {
    if (!r.success) continue;
    cpu_days[r.site] += r.runtime().to_days();
  }
  std::vector<double> days;
  for (const auto& [site, d] : cpu_days) days.push_back(d);
  if (!days.empty()) {
    std::sort(days.begin(), days.end());
    const double median = days[days.size() / 2];
    out.cpu_spread = median > 0.0 ? days.back() / median : 0.0;
  }

  for (const auto& site : grid.sites()) {
    out.peak_gk_load = std::max(
        out.peak_gk_load, site->gatekeeper().peak_one_minute_load());
  }
  for (const std::string& vo : core::canonical_vos()) {
    if (const broker::ResourceBroker* b = grid.broker(vo)) {
      out.matches += b->matches();
      out.rebinds += b->rebinds();
      out.holds += b->holds();
    }
  }
  std::cout << "done (" << sim.executed() << " events, " << out.jobs
            << " jobs)\n";
  return out;
}

}  // namespace

int main() {
  using grid3::util::AsciiTable;
  grid3::bench::header(
      "Ablation D: resource broker vs favorite-sites placement",
      "sections 6.4 + 8: gatekeeper overload, grid-level scheduling");

  const std::vector<grid3::broker::PolicyKind> modes = {
      grid3::broker::PolicyKind::kNone,
      grid3::broker::PolicyKind::kFavoriteSites,
      grid3::broker::PolicyKind::kQueueDepth,
      grid3::broker::PolicyKind::kDataLocality,
      grid3::broker::PolicyKind::kLoadShedding,
  };

  AsciiTable table{{"placement", "jobs", "completion", "overload", "gk-down",
                    "other-fail", "site CPU max/med", "peak gk load",
                    "matches", "rebinds", "holds"}};
  std::map<grid3::broker::PolicyKind, Outcome> results;
  for (const auto kind : modes) {
    const Outcome out = run_mode(kind);
    results[kind] = out;
    const std::string label =
        kind == grid3::broker::PolicyKind::kNone
            ? "favorite-sites (no broker)"
            : std::string{"broker:"} + grid3::broker::to_string(kind);
    table.add_row({label, AsciiTable::integer(static_cast<long>(out.jobs)),
                   AsciiTable::percent(out.completion),
                   AsciiTable::integer(static_cast<long>(out.overload)),
                   AsciiTable::integer(static_cast<long>(out.gk_down)),
                   AsciiTable::integer(static_cast<long>(out.other_failed)),
                   AsciiTable::num(out.cpu_spread, 2),
                   AsciiTable::num(out.peak_gk_load, 1),
                   AsciiTable::integer(static_cast<long>(out.matches)),
                   AsciiTable::integer(static_cast<long>(out.rebinds)),
                   AsciiTable::integer(static_cast<long>(out.holds))});
  }
  std::cout << '\n';
  table.print(std::cout);

  const Outcome& base = results[grid3::broker::PolicyKind::kNone];
  const Outcome& qd = results[grid3::broker::PolicyKind::kQueueDepth];
  const Outcome& ls = results[grid3::broker::PolicyKind::kLoadShedding];
  // Brokered plans archive outputs through the jobmanager (placement
  // intents), so brokered jobs carry a larger section 6.4 staging factor
  // than the baseline, whose archive traffic rides third-party GridFTP
  // stage-out nodes the gatekeeper never sees.  The load criterion
  // therefore uses the policy that actually ranks on gatekeeper load.
  const bool lower_peak = ls.peak_gk_load < base.peak_gk_load;
  const bool no_worse_completion = qd.completion >= base.completion;
  std::cout << "\nacceptance: load-shedding peak gatekeeper load "
            << AsciiTable::num(ls.peak_gk_load, 1) << " vs baseline "
            << AsciiTable::num(base.peak_gk_load, 1) << " -> "
            << (lower_peak ? "LOWER" : "NOT LOWER")
            << "; queue-depth completion " << AsciiTable::percent(qd.completion)
            << " vs " << AsciiTable::percent(base.completion) << " -> "
            << (no_worse_completion ? "NO WORSE" : "WORSE") << '\n';
  std::cout
      << "\nreading: without a broker, Condor-G pushes jobs at whatever "
         "gatekeeper the plan named, even one that is down or past the "
         "section 6.4 knee, and the attempt is charged as a failure.  "
         "Brokered policies re-match around dead gatekeepers (fewer "
         "gk-down failures, higher completion), and their jobs archive "
         "outputs through the jobmanager -- extra gatekeeper staging "
         "load the no-broker mode offloads to plain GridFTP transfers.  "
         "Load shedding still keeps the peak below the baseline despite "
         "carrying that traffic; ranking by live queue depth instead "
         "chases the largest free CPU pools, so work (and its staging "
         "load) concentrates on the biggest sites (high max/median CPU "
         "spread), while the brokered favorite-sites policy keeps each "
         "VO's static spread.\n";
  grid3::bench::scale_note();
  return (lower_peak && no_worse_completion) ? 0 : 1;
}
