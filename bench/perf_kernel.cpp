// Microbenchmarks for the simulator kernel: event queue throughput,
// network fair-share reallocation, scheduler matchmaking, metric bus
// fan-out.  These bound how large a Grid3 scenario the simulator can
// sustain.
#include <benchmark/benchmark.h>

#include "batch/scheduler.h"
#include "monitoring/bus.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace {

using namespace grid3;

void BM_EventQueueThroughput(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    util::Rng rng{1};
    for (int i = 0; i < events; ++i) {
      sim.schedule_at(Time::seconds(rng.uniform(0.0, 1000.0)), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void BM_NetworkReallocate(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    net::Network net{sim};
    std::vector<net::NodeId> nodes;
    for (int i = 0; i < 16; ++i) {
      nodes.push_back(net.add_node({"n" + std::to_string(i),
                                    Bandwidth::mbps(100),
                                    Bandwidth::mbps(100), true}));
    }
    util::Rng rng{2};
    for (int i = 0; i < flows; ++i) {
      const auto a = nodes[rng.index(nodes.size())];
      auto b = nodes[rng.index(nodes.size())];
      if (b == a) b = nodes[(a + 1) % nodes.size()];
      net.start_flow(a, b, Bytes::mb(rng.uniform(1, 50)),
                     [](const net::FlowResult&) {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_NetworkReallocate)->Arg(16)->Arg(128);

void BM_SchedulerChurn(benchmark::State& state) {
  const auto jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    batch::SchedulerConfig cfg;
    cfg.site_name = "bench";
    cfg.slots = 64;
    batch::CondorScheduler sched{sim, cfg};
    util::Rng rng{3};
    for (int i = 0; i < jobs; ++i) {
      batch::JobRequest req;
      req.vo = "vo" + std::to_string(i % 6);
      req.actual_runtime = Time::minutes(rng.uniform(5, 120));
      req.requested_walltime = Time::hours(3);
      sched.submit(req, {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_SchedulerChurn)->Arg(256)->Arg(4096);

void BM_MetricBusFanout(benchmark::State& state) {
  const auto subs = static_cast<int>(state.range(0));
  monitoring::MetricBus bus;
  std::size_t hits = 0;
  for (int i = 0; i < subs; ++i) {
    bus.subscribe("*", "monalisa.*",
                  [&hits](const monitoring::MetricKey&, Time, double) {
                    ++hits;
                  });
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    bus.publish("site", "monalisa.load", Time::micros(++t), 1.0);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricBusFanout)->Arg(1)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
