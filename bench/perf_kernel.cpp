// Microbenchmarks for the simulator kernel: event queue throughput,
// network fair-share reallocation, scheduler matchmaking, metric bus
// fan-out.  These bound how large a Grid3 scenario the simulator can
// sustain.
//
// `perf_kernel --snapshot PATH` skips google-benchmark and writes a
// small JSON snapshot (events/sec executed, queue schedule/cancel ops
// per second, best of 3) that scripts/check_bench.py diffs against the
// committed bench/BENCH_kernel.json baseline as a regression gate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "batch/scheduler.h"
#include "broker/broker.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "monitoring/bus.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace {

using namespace grid3;

void BM_EventQueueThroughput(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    util::Rng rng{1};
    for (int i = 0; i < events; ++i) {
      sim.schedule_at(Time::seconds(rng.uniform(0.0, 1000.0)), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void BM_NetworkReallocate(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    net::Network net{sim};
    std::vector<net::NodeId> nodes;
    for (int i = 0; i < 16; ++i) {
      nodes.push_back(net.add_node({"n" + std::to_string(i),
                                    Bandwidth::mbps(100),
                                    Bandwidth::mbps(100), true}));
    }
    util::Rng rng{2};
    for (int i = 0; i < flows; ++i) {
      const auto a = nodes[rng.index(nodes.size())];
      auto b = nodes[rng.index(nodes.size())];
      if (b == a) b = nodes[(a + 1) % nodes.size()];
      net.start_flow(a, b, Bytes::mb(rng.uniform(1, 50)),
                     [](const net::FlowResult&) {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_NetworkReallocate)->Arg(16)->Arg(128);

void BM_SchedulerChurn(benchmark::State& state) {
  const auto jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    batch::SchedulerConfig cfg;
    cfg.site_name = "bench";
    cfg.slots = 64;
    batch::CondorScheduler sched{sim, cfg};
    util::Rng rng{3};
    for (int i = 0; i < jobs; ++i) {
      batch::JobRequest req;
      req.vo = "vo" + std::to_string(i % 6);
      req.actual_runtime = Time::minutes(rng.uniform(5, 120));
      req.requested_walltime = Time::hours(3);
      sched.submit(req, {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_SchedulerChurn)->Arg(256)->Arg(4096);

/// A small brokered fabric for the match-cycle workload: `sites`
/// uniform sites behind one GIIS, one queue-depth broker.
struct MatchRig {
  sim::Simulation sim;
  core::Grid3 grid{sim, 7};
  broker::ResourceBroker* broker = nullptr;

  explicit MatchRig(int sites) {
    grid.add_vo("benchvo");
    broker = &grid.attach_broker("benchvo", broker::PolicyKind::kQueueDepth);
    for (int i = 0; i < sites; ++i) {
      core::SiteConfig cfg;
      cfg.name = "S" + std::to_string(i);
      cfg.owner_vo = "benchvo";
      cfg.cpus = 32;
      grid.add_site(cfg, /*reliability=*/1000.0);
    }
    grid.start_operations();
    sim.run_until(Time::minutes(1));  // initial GRIS publications
  }
};

void BM_BrokerMatchCycle(benchmark::State& state) {
  MatchRig rig{static_cast<int>(state.range(0))};
  broker::JobSpec spec;
  spec.vo = "benchvo";
  spec.runtime = Time::hours(1);
  const Time now = rig.sim.now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.broker->choose(spec, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrokerMatchCycle)->Arg(32)->Arg(256);

void BM_MetricBusFanout(benchmark::State& state) {
  const auto subs = static_cast<int>(state.range(0));
  monitoring::MetricBus bus;
  std::size_t hits = 0;
  for (int i = 0; i < subs; ++i) {
    bus.subscribe("*", "monalisa.*",
                  [&hits](const monitoring::MetricKey&, Time, double) {
                    ++hits;
                  });
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    bus.publish("site", "monalisa.load", Time::micros(++t), 1.0);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricBusFanout)->Arg(1)->Arg(32);

// --- snapshot mode ----------------------------------------------------

/// Wall-clock rate (items/sec) of `work`, best of `rounds` runs.
template <typename Fn>
double best_rate(int rounds, std::int64_t items, Fn work) {
  double best = 0.0;
  for (int r = 0; r < rounds; ++r) {
    const auto start = std::chrono::steady_clock::now();
    work();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double rate = static_cast<double>(items) / elapsed.count();
    if (rate > best) best = rate;
  }
  return best;
}

/// Schedule-heavy workload: `events` randomly-timed no-op events pushed
/// and drained -- the hot loop of every scenario run.
double measure_events_per_sec() {
  constexpr int kEvents = 200'000;
  return best_rate(3, kEvents, [] {
    sim::Simulation sim;
    util::Rng rng{1};
    for (int i = 0; i < kEvents; ++i) {
      sim.schedule_at(Time::seconds(rng.uniform(0.0, 1000.0)), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  });
}

/// Queue-op workload: schedule/cancel churn with periodic drains, the
/// pattern timers and rescue paths put on the cancel bookkeeping.
double measure_queue_ops_per_sec() {
  constexpr int kRounds = 2'000;
  constexpr int kPerRound = 50;
  // Each round: 50 schedules + 25 cancels + drain.
  constexpr std::int64_t kOps = static_cast<std::int64_t>(kRounds) *
                                (kPerRound + kPerRound / 2);
  return best_rate(3, kOps, [] {
    sim::Simulation sim;
    std::vector<sim::EventId> ids;
    for (int round = 0; round < kRounds; ++round) {
      ids.clear();
      for (int i = 0; i < kPerRound; ++i) {
        ids.push_back(sim.schedule_in(Time::seconds(1), [] {}));
      }
      for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
      sim.run();
    }
    benchmark::DoNotOptimize(sim.cancel_backlog());
  });
}

/// Match-cycle workload: steady-state choose() passes over a 64-site
/// view with the incremental rank cache warm -- the broker-side hot
/// loop the grid30 bench stresses at 270 sites.
double measure_match_cycles_per_sec() {
  constexpr int kCycles = 20'000;
  MatchRig rig{64};
  broker::JobSpec spec;
  spec.vo = "benchvo";
  spec.runtime = Time::hours(1);
  const Time now = rig.sim.now();
  (void)rig.broker->choose(spec, now);  // warm the view + rank cache
  return best_rate(3, kCycles, [&] {
    for (int i = 0; i < kCycles; ++i) {
      benchmark::DoNotOptimize(rig.broker->choose(spec, now));
    }
  });
}

int write_snapshot(const char* path) {
  const double events = measure_events_per_sec();
  const double queue_ops = measure_queue_ops_per_sec();
  const double match_cycles = measure_match_cycles_per_sec();
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_kernel: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"schema\": \"grid3-bench-kernel-v1\",\n"
               "  \"events_per_sec\": %.0f,\n"
               "  \"queue_ops_per_sec\": %.0f,\n"
               "  \"match_cycles_per_sec\": %.0f\n"
               "}\n",
               events, queue_ops, match_cycles);
  std::fclose(out);
  std::printf("perf_kernel snapshot: events_per_sec=%.0f "
              "queue_ops_per_sec=%.0f match_cycles_per_sec=%.0f -> %s\n",
              events, queue_ops, match_cycles, path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      return write_snapshot(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
