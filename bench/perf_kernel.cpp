// Microbenchmarks for the simulator kernel: event queue throughput,
// network fair-share reallocation, scheduler matchmaking, metric bus
// fan-out.  These bound how large a Grid3 scenario the simulator can
// sustain.
//
// `perf_kernel --snapshot PATH` skips google-benchmark and writes a
// small JSON snapshot (events/sec executed, queue schedule/cancel ops
// per second, timer-storm events/sec in calendar vs heap mode,
// flow-churn reallocs/sec in partial vs full mode; best of N) that
// scripts/check_bench.py diffs against the committed
// bench/BENCH_kernel.json baseline as a regression gate and holds to
// the docs/BENCH.md speedup floors (timer storm >= 2x, flow churn
// >= 3x).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "batch/scheduler.h"
#include "broker/broker.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "monitoring/bus.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace {

using namespace grid3;

void BM_EventQueueThroughput(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    util::Rng rng{1};
    for (int i = 0; i < events; ++i) {
      sim.schedule_at(Time::seconds(rng.uniform(0.0, 1000.0)), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void BM_NetworkReallocate(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    net::Network net{sim};
    std::vector<net::NodeId> nodes;
    for (int i = 0; i < 16; ++i) {
      nodes.push_back(net.add_node({"n" + std::to_string(i),
                                    Bandwidth::mbps(100),
                                    Bandwidth::mbps(100), true}));
    }
    util::Rng rng{2};
    for (int i = 0; i < flows; ++i) {
      const auto a = nodes[rng.index(nodes.size())];
      auto b = nodes[rng.index(nodes.size())];
      if (b == a) b = nodes[(a + 1) % nodes.size()];
      net.start_flow(a, b, Bytes::mb(rng.uniform(1, 50)),
                     [](const net::FlowResult&) {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_NetworkReallocate)->Arg(16)->Arg(128);

void BM_SchedulerChurn(benchmark::State& state) {
  const auto jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    batch::SchedulerConfig cfg;
    cfg.site_name = "bench";
    cfg.slots = 64;
    batch::CondorScheduler sched{sim, cfg};
    util::Rng rng{3};
    for (int i = 0; i < jobs; ++i) {
      batch::JobRequest req;
      req.vo = "vo" + std::to_string(i % 6);
      req.actual_runtime = Time::minutes(rng.uniform(5, 120));
      req.requested_walltime = Time::hours(3);
      sched.submit(req, {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_SchedulerChurn)->Arg(256)->Arg(4096);

/// A small brokered fabric for the match-cycle workload: `sites`
/// uniform sites behind one GIIS, one queue-depth broker.
struct MatchRig {
  sim::Simulation sim;
  core::Grid3 grid{sim, 7};
  broker::ResourceBroker* broker = nullptr;

  explicit MatchRig(int sites) {
    grid.add_vo("benchvo");
    broker = &grid.attach_broker("benchvo", broker::PolicyKind::kQueueDepth);
    for (int i = 0; i < sites; ++i) {
      core::SiteConfig cfg;
      cfg.name = "S" + std::to_string(i);
      cfg.owner_vo = "benchvo";
      cfg.cpus = 32;
      grid.add_site(cfg, /*reliability=*/1000.0);
    }
    grid.start_operations();
    sim.run_until(Time::minutes(1));  // initial GRIS publications
  }
};

void BM_BrokerMatchCycle(benchmark::State& state) {
  MatchRig rig{static_cast<int>(state.range(0))};
  broker::JobSpec spec;
  spec.vo = "benchvo";
  spec.runtime = Time::hours(1);
  const Time now = rig.sim.now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.broker->choose(spec, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrokerMatchCycle)->Arg(32)->Arg(256);

/// Timer storm: `procs` periodic timers with near-uniform intervals --
/// the monitoring-sweep shape that dominates scenario event counts.
/// Arg 0 selects the queue discipline (0 = pure heap, 1 = calendar);
/// both fire the exact same event sequence.
void BM_TimerStorm(benchmark::State& state) {
  const bool calendar = state.range(0) != 0;
  for (auto _ : state) {
    sim::QueueConfig qc;
    qc.calendar = calendar;
    sim::Simulation sim{qc};
    util::Rng rng{11};
    std::vector<std::unique_ptr<sim::PeriodicProcess>> procs;
    procs.reserve(2'000);
    for (int i = 0; i < 2'000; ++i) {
      const auto interval = Time::millis(
          static_cast<std::int64_t>(rng.uniform(15'000.0, 500'000.0)));
      procs.push_back(std::make_unique<sim::PeriodicProcess>(
          sim, interval, [] { return true; }));
      procs.back()->start(Time::millis(
          static_cast<std::int64_t>(rng.uniform(0.0, 15'000.0))));
    }
    sim.run_until(Time::seconds(600));
    benchmark::DoNotOptimize(sim.executed());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(sim.executed()));
  }
}
BENCHMARK(BM_TimerStorm)->Arg(0)->Arg(1);

/// Flow churn: chained transfers inside small disjoint node clusters.
/// Arg 0 selects the solver scope (0 = full-graph re-solve, 1 = partial,
/// component-scoped); decisions and results are byte-identical.
void BM_FlowChurn(benchmark::State& state) {
  const bool partial = state.range(0) != 0;
  for (auto _ : state) {
    sim::Simulation sim;
    net::Network net{sim, {partial}};
    util::Rng rng{12};
    struct Chain {
      net::Network* net;
      util::Rng* rng;
      net::NodeId base;
      int remaining;
      void launch() {
        if (remaining-- <= 0) return;
        const auto a = base + static_cast<net::NodeId>(rng->index(4));
        auto b = base + static_cast<net::NodeId>(rng->index(4));
        if (b == a) b = base + static_cast<net::NodeId>((a - base + 1) % 4);
        net->start_flow(a, b, Bytes::mb(rng->uniform(1.0, 20.0)),
                        [this](const net::FlowResult&) { launch(); });
      }
    };
    std::vector<Chain> chains;
    chains.reserve(16 * 2);
    for (int c = 0; c < 16; ++c) {
      net::NodeId base = 0;
      for (int n = 0; n < 4; ++n) {
        const auto id = net.add_node({"c" + std::to_string(c) + "n" +
                                          std::to_string(n),
                                      Bandwidth::mbps(100),
                                      Bandwidth::mbps(100), true});
        if (n == 0) base = id;
      }
      for (int k = 0; k < 2; ++k) {
        chains.push_back({&net, &rng, base, 10});
        chains.back().launch();
      }
    }
    sim.run();
    benchmark::DoNotOptimize(net.reallocs());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(net.reallocs()));
  }
}
BENCHMARK(BM_FlowChurn)->Arg(0)->Arg(1);

void BM_MetricBusFanout(benchmark::State& state) {
  const auto subs = static_cast<int>(state.range(0));
  monitoring::MetricBus bus;
  std::size_t hits = 0;
  for (int i = 0; i < subs; ++i) {
    bus.subscribe("*", "monalisa.*",
                  [&hits](const monitoring::MetricKey&, Time, double) {
                    ++hits;
                  });
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    bus.publish("site", "monalisa.load", Time::micros(++t), 1.0);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricBusFanout)->Arg(1)->Arg(32);

// --- snapshot mode ----------------------------------------------------

/// Wall-clock rate (items/sec) of `work`, best of `rounds` runs.
template <typename Fn>
double best_rate(int rounds, std::int64_t items, Fn work) {
  double best = 0.0;
  for (int r = 0; r < rounds; ++r) {
    const auto start = std::chrono::steady_clock::now();
    work();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double rate = static_cast<double>(items) / elapsed.count();
    if (rate > best) best = rate;
  }
  return best;
}

/// Schedule-heavy workload: `events` randomly-timed no-op events pushed
/// and drained -- the hot loop of every scenario run.
double measure_events_per_sec() {
  constexpr int kEvents = 200'000;
  return best_rate(3, kEvents, [] {
    sim::Simulation sim;
    util::Rng rng{1};
    for (int i = 0; i < kEvents; ++i) {
      sim.schedule_at(Time::seconds(rng.uniform(0.0, 1000.0)), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  });
}

/// Queue-op workload: schedule/cancel churn with periodic drains, the
/// pattern timers and rescue paths put on the cancel bookkeeping.
double measure_queue_ops_per_sec() {
  constexpr int kRounds = 2'000;
  constexpr int kPerRound = 50;
  // Each round: 50 schedules + 25 cancels + drain.
  constexpr std::int64_t kOps = static_cast<std::int64_t>(kRounds) *
                                (kPerRound + kPerRound / 2);
  return best_rate(3, kOps, [] {
    sim::Simulation sim;
    std::vector<sim::EventId> ids;
    for (int round = 0; round < kRounds; ++round) {
      ids.clear();
      for (int i = 0; i < kPerRound; ++i) {
        ids.push_back(sim.schedule_in(Time::seconds(1), [] {}));
      }
      for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
      sim.run();
    }
    benchmark::DoNotOptimize(sim.cancel_backlog());
  });
}

/// Match-cycle workload: steady-state choose() passes over a 64-site
/// view with the incremental rank cache warm -- the broker-side hot
/// loop the grid30 bench stresses at 270 sites.
double measure_match_cycles_per_sec() {
  constexpr int kCycles = 20'000;
  MatchRig rig{64};
  broker::JobSpec spec;
  spec.vo = "benchvo";
  spec.runtime = Time::hours(1);
  const Time now = rig.sim.now();
  (void)rig.broker->choose(spec, now);  // warm the view + rank cache
  return best_rate(3, kCycles, [&] {
    for (int i = 0; i < kCycles; ++i) {
      benchmark::DoNotOptimize(rig.broker->choose(spec, now));
    }
  });
}

/// Timer-storm workload: thousands of near-uniform periodic timers (the
/// monitoring-sweep event mix) driven through the chosen queue
/// discipline.  The event sequence is identical in both modes; only the
/// storage discipline changes, so executed/sec is a clean discipline
/// comparison.
double measure_timer_events_per_sec(bool calendar) {
  // 1M concurrent timers: at this scale the heap's random sift paths
  // walk ~20 levels of a ~56 MB array (cache miss per level), which is
  // exactly the regime the calendar's O(1) bucket appends and sorted
  // drains avoid.  Timers self-reschedule directly through the
  // Simulation API so the measurement is the queue discipline plus the
  // irreducible per-event machinery, nothing else.
  constexpr int kProcs = 1'000'000;
  const Time warmup = Time::seconds(20);    // absorb the start transient
  const Time horizon = Time::seconds(60);   // steady-state window
  struct Timer {
    sim::Simulation* sim;
    Time interval;
    void fire() {
      sim->schedule_in(interval, [this] { fire(); });
    }
  };
  double best = 0.0;
  for (int round = 0; round < 3; ++round) {
    sim::QueueConfig qc;
    qc.calendar = calendar;
    sim::Simulation sim{qc};
    util::Rng rng{11};
    std::vector<Timer> timers(static_cast<std::size_t>(kProcs));
    for (Timer& t : timers) {
      t = {&sim, Time::millis(static_cast<std::int64_t>(
                     rng.uniform(15'000.0, 500'000.0)))};
      Timer* tp = &t;
      sim.schedule_at(
          Time::millis(static_cast<std::int64_t>(rng.uniform(0.0, 15'000.0))),
          [tp] { tp->fire(); });
    }
    sim.run_until(warmup);
    const std::uint64_t warm = sim.executed();
    const auto start = std::chrono::steady_clock::now();
    sim.run_until(horizon);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double rate =
        static_cast<double>(sim.executed() - warm) / elapsed.count();
    if (rate > best) best = rate;
  }
  return best;
}

/// Flow-churn workload: chained bulk transfers inside small disjoint
/// node clusters, so the affected component on every start/completion
/// is a handful of links while the fabric-wide active set is ~150.
/// Both solver scopes make byte-identical decisions; reallocs/sec
/// measures the re-solve cost alone.
double measure_flow_reallocs_per_sec(bool partial) {
  constexpr int kClusters = 32;
  constexpr int kNodesPerCluster = 4;
  constexpr int kChainsPerCluster = 3;
  constexpr int kFlowsPerChain = 20;
  struct Chain {
    net::Network* net;
    util::Rng* rng;
    net::NodeId base;
    int remaining;
    void launch() {
      if (remaining-- <= 0) return;
      const auto a =
          base + static_cast<net::NodeId>(rng->index(kNodesPerCluster));
      auto b = base + static_cast<net::NodeId>(rng->index(kNodesPerCluster));
      if (b == a) {
        b = base + static_cast<net::NodeId>((a - base + 1) % kNodesPerCluster);
      }
      net->start_flow(a, b, Bytes::mb(rng->uniform(1.0, 20.0)),
                      [this](const net::FlowResult&) { launch(); });
    }
  };
  double best = 0.0;
  for (int round = 0; round < 2; ++round) {
    sim::Simulation sim;
    net::Network net{sim, {partial}};
    util::Rng rng{12};
    std::vector<Chain> chains;
    chains.reserve(kClusters * kChainsPerCluster);
    for (int c = 0; c < kClusters; ++c) {
      net::NodeId base = 0;
      for (int n = 0; n < kNodesPerCluster; ++n) {
        const auto id = net.add_node(
            {"c" + std::to_string(c) + "n" + std::to_string(n),
             Bandwidth::mbps(100), Bandwidth::mbps(100), true});
        if (n == 0) base = id;
      }
      for (int k = 0; k < kChainsPerCluster; ++k) {
        chains.push_back({&net, &rng, base, kFlowsPerChain});
      }
    }
    const auto start = std::chrono::steady_clock::now();
    for (Chain& chain : chains) chain.launch();
    sim.run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double rate =
        static_cast<double>(net.reallocs()) / elapsed.count();
    if (rate > best) best = rate;
  }
  return best;
}

int write_snapshot(const char* path) {
  const double events = measure_events_per_sec();
  const double queue_ops = measure_queue_ops_per_sec();
  const double match_cycles = measure_match_cycles_per_sec();
  const double timer_heap = measure_timer_events_per_sec(false);
  const double timer_cal = measure_timer_events_per_sec(true);
  const double realloc_full = measure_flow_reallocs_per_sec(false);
  const double realloc_partial = measure_flow_reallocs_per_sec(true);
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_kernel: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"schema\": \"grid3-bench-kernel-v2\",\n"
               "  \"events_per_sec\": %.0f,\n"
               "  \"queue_ops_per_sec\": %.0f,\n"
               "  \"match_cycles_per_sec\": %.0f,\n"
               "  \"timer_events_per_sec\": %.0f,\n"
               "  \"timer_events_per_sec_heap\": %.0f,\n"
               "  \"flow_reallocs_per_sec\": %.0f,\n"
               "  \"flow_reallocs_per_sec_full\": %.0f\n"
               "}\n",
               events, queue_ops, match_cycles, timer_cal, timer_heap,
               realloc_partial, realloc_full);
  std::fclose(out);
  std::printf(
      "perf_kernel snapshot: events_per_sec=%.0f queue_ops_per_sec=%.0f "
      "match_cycles_per_sec=%.0f timer_events_per_sec=%.0f (heap %.0f, "
      "%.1fx) flow_reallocs_per_sec=%.0f (full %.0f, %.1fx) -> %s\n",
      events, queue_ops, match_cycles, timer_cal, timer_heap,
      timer_heap > 0 ? timer_cal / timer_heap : 0.0, realloc_partial,
      realloc_full,
      realloc_full > 0 ? realloc_partial / realloc_full : 0.0, path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      return write_snapshot(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
