// "Grid30": the Grid2003 fabric at 10x scale -- 270 sites, ~29k CPUs,
// six VOs -- proving the interned-id hot paths and the broker's
// incremental rank maintenance at a scale the 27-site reproduction
// never stresses.  Three phases:
//
//  1. Match-cycle microbenchmark: two brokers over the same 270-site
//     GIIS view -- one serving ranks from the incremental cache, one
//     forced to the full per-match rescore -- each driven through
//     repeated choose() passes.  The ratio is the incremental engine's
//     speedup; the acceptance floor is 5x.
//  2. Equivalence: the same seeded multi-VO campaign run twice, once
//     per rank mode, and the per-VO match logs diffed byte-for-byte.
//     The cache must never change a decision, only its cost.
//  3. Campaign: the incremental run doubles as the throughput probe
//     (simulator events/sec, completed jobs) and emits Table-1- and
//     Figure-2-shaped per-VO outputs at the 10x scale.
//  4. Kernel equivalence: the same campaign re-run on the legacy kernel
//     (pure-heap event queue + full-graph fair-share re-solve,
//     docs/KERNEL.md) and its match logs diffed byte-for-byte against
//     the calendar/partial run.
//
// `grid30 --snapshot PATH` additionally writes the measured rates as a
// JSON snapshot (the committed bench/BENCH_grid30.json records the
// acceptance numbers); the same fields are always printed on the
// `result-json:` line for scripts/check_bench.py.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "broker/broker.h"
#include "broker/job_spec.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/roster.h"
#include "monitoring/mdviewer.h"
#include "workload/catalog.h"

namespace {

using namespace grid3;

constexpr int kReplicas = 10;  // 27 templates x 10 = 270 sites

struct MicrobenchResult {
  std::size_t sites = 0;
  int total_cpus = 0;
  double cycles_per_sec_full = 0.0;
  double cycles_per_sec_incremental = 0.0;
  bool same_choice = true;

  [[nodiscard]] double speedup() const {
    return cycles_per_sec_full > 0.0
               ? cycles_per_sec_incremental / cycles_per_sec_full
               : 0.0;
  }
};

/// Wall-clock choose() cycle rate: repeated passes over the same view
/// until `min_seconds` elapsed (the view TTL never expires because the
/// simulation clock does not advance between calls).
double measure_cycles(broker::ResourceBroker& b, const broker::JobSpec& spec,
                      Time now, double min_seconds) {
  (void)b.choose(spec, now);  // warm: view refresh + cache fill
  const std::uint64_t before = b.match_cycles();
  const auto start = std::chrono::steady_clock::now();
  std::chrono::duration<double> elapsed{0.0};
  do {
    for (int i = 0; i < 200; ++i) {
      (void)b.choose(spec, now);
    }
    elapsed = std::chrono::steady_clock::now() - start;
  } while (elapsed.count() < min_seconds);
  return static_cast<double>(b.match_cycles() - before) / elapsed.count();
}

MicrobenchResult run_microbench() {
  std::cout << "[microbench] assembling the 270-site fabric ... "
            << std::flush;
  sim::Simulation sim;
  core::Grid3 grid{sim, bench::seed()};
  core::AssembleOptions ao;
  ao.roster_replicas = kReplicas;
  ao.add_users = false;
  core::assemble_grid3(grid, ao);

  broker::BrokerConfig inc_cfg;
  inc_cfg.incremental_rank = true;
  broker::BrokerConfig full_cfg;
  full_cfg.incremental_rank = false;
  broker::ResourceBroker& inc = grid.attach_broker(
      "usatlas", broker::PolicyKind::kQueueDepth, inc_cfg);
  broker::ResourceBroker& full = grid.attach_broker(
      "uscms", broker::PolicyKind::kQueueDepth, full_cfg);
  sim.run_until(Time::minutes(6));  // let every GRIS publish a snapshot

  MicrobenchResult out;
  out.sites = grid.sites().size();
  for (const auto& site : grid.sites()) out.total_cpus += site->cpus();
  std::cout << "done (" << out.sites << " sites, " << out.total_cpus
            << " CPUs)\n";

  // One spec class, installed fabric-wide (the entrada demonstrator
  // lands on every roster site), so a full rescore walks all 270 sites.
  broker::JobSpec spec;
  spec.app = "grid30-probe";
  spec.required_app = core::app::kEntrada;
  spec.runtime = Time::hours(2);
  const Time now = sim.now();
  spec.vo = "usatlas";
  const std::optional<std::string> inc_pick = inc.choose(spec, now);
  spec.vo = "uscms";
  const std::optional<std::string> full_pick = full.choose(spec, now);
  out.same_choice = inc_pick == full_pick;

  const double min_seconds = bench::quick_or(0.4, 0.15);
  spec.vo = "uscms";
  out.cycles_per_sec_full = measure_cycles(full, spec, now, min_seconds);
  spec.vo = "usatlas";
  out.cycles_per_sec_incremental =
      measure_cycles(inc, spec, now, min_seconds);
  std::cout << "[microbench] full rescore "
            << static_cast<long>(out.cycles_per_sec_full)
            << " cycles/s, incremental "
            << static_cast<long>(out.cycles_per_sec_incremental)
            << " cycles/s (" << util::AsciiTable::num(out.speedup(), 1)
            << "x)\n\n";
  return out;
}

struct CampaignResult {
  std::string match_log;     ///< per-VO match logs, concatenated
  std::size_t jobs = 0;      ///< accounted job records
  double events_per_sec = 0.0;
  std::uint64_t match_cycles = 0;
  std::uint64_t rank_evals = 0;
  std::uint64_t rank_cache_hits = 0;
  double wall_seconds = 0.0;
};

CampaignResult run_campaign(bool incremental, bool print_tables,
                            bool legacy_kernel = false) {
  // The campaign is the catalog's grid30-2month entry: the paper's full
  // job volume (scale 1.0) on the 10x fabric for two months -- heavy
  // enough to exercise tens of thousands of match cycles per campaign
  // while keeping the two-run equivalence diff inside the bench
  // catalogue's wall-clock budget.  Only the equivalence knobs under
  // test (rank mode, kernel) are overridden here.
  const workload::ScenarioSpec spec =
      workload::ScenarioCatalog::get("grid30-2month", bench::seed());
  apps::ScenarioOptions opts = spec.options(bench::quick());
  opts.job_scale *= bench::job_scale();
  opts.cpu_scale = bench::cpu_scale();
  opts.broker_incremental_rank = incremental;
  // Legacy kernel: pure-heap event queue + full-graph fair-share
  // re-solve -- the pre-calendar baseline the campaign diff certifies
  // the fast kernel against, byte for byte.
  opts.network_partial_reallocate = !legacy_kernel;
  std::cout << "[campaign " << (incremental ? "incremental" : "full-rescore")
            << (legacy_kernel ? ", legacy kernel" : "")
            << "] months=" << opts.months << " job_scale=" << opts.job_scale
            << " replicas=" << kReplicas << " ... " << std::flush;

  sim::QueueConfig qc;
  qc.calendar = !legacy_kernel;
  sim::Simulation sim{qc};
  const auto start = std::chrono::steady_clock::now();
  apps::Scenario scenario{sim, opts};
  scenario.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  CampaignResult out;
  out.wall_seconds = elapsed.count();
  out.events_per_sec =
      static_cast<double>(sim.executed()) / elapsed.count();
  auto& grid = scenario.grid();
  out.jobs = grid.igoc().job_db().size();
  for (const std::string& vo : core::canonical_vos()) {
    if (const broker::ResourceBroker* b = grid.broker(vo)) {
      out.match_log += "== " + vo + " ==\n" + b->serialize_match_log();
      out.match_cycles += b->match_cycles();
      out.rank_evals += b->rank_evals();
      out.rank_cache_hits += b->rank_cache_hits();
    }
  }
  std::cout << "done (" << sim.executed() << " events, " << out.jobs
            << " jobs, " << util::AsciiTable::num(out.wall_seconds, 1)
            << "s wall)\n";

  if (print_tables) {
    using util::AsciiTable;
    const auto& db = grid.igoc().job_db();
    const Time to = sim.now();
    std::cout << "\nTable 1 (shape) at 10x scale:\n";
    AsciiTable table{{"VO", "jobs", "cpu-days", "sites used", "avg hrs"}};
    for (const std::string& vo : db.vos()) {
      const auto stats = db.stats_for(vo, Time::zero(), to);
      table.add_row({vo,
                     AsciiTable::integer(static_cast<long>(stats.jobs)),
                     AsciiTable::num(stats.total_cpu_days, 1),
                     AsciiTable::integer(
                         static_cast<long>(stats.sites_used)),
                     AsciiTable::num(stats.avg_runtime_hours, 2)});
    }
    table.print(std::cout);

    std::cout << "\nFigure 2 (shape): integrated CPU-days by VO:\n";
    const monitoring::MdViewer viewer = scenario.viewer();
    for (const auto& [vo, days] :
         viewer.integrated_cpu_days_by_vo(Time::zero(), to)) {
      std::cout << "  " << vo << ": " << AsciiTable::num(days, 1) << "\n";
    }
  }
  return out;
}

int write_snapshot(const char* path, const MicrobenchResult& micro,
                   bool identical, bool kernel_identical,
                   const CampaignResult& campaign) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "grid30: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"schema\": \"grid3-bench-grid30-v2\",\n"
               "  \"sites\": %zu,\n"
               "  \"total_cpus\": %d,\n"
               "  \"jobs\": %zu,\n"
               "  \"events_per_sec\": %.0f,\n"
               "  \"match_cycles_per_sec_full\": %.0f,\n"
               "  \"match_cycles_per_sec_incremental\": %.0f,\n"
               "  \"match_speedup\": %.2f,\n"
               "  \"identical_decisions\": %s,\n"
               "  \"kernel_identical\": %s\n"
               "}\n",
               micro.sites, micro.total_cpus, campaign.jobs,
               campaign.events_per_sec, micro.cycles_per_sec_full,
               micro.cycles_per_sec_incremental, micro.speedup(),
               identical ? "true" : "false",
               kernel_identical ? "true" : "false");
  std::fclose(out);
  std::printf("grid30 snapshot -> %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* snapshot_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      snapshot_path = argv[i + 1];
    }
  }
  grid3::bench::header(
      "Grid30: interned-id hot paths + incremental matchmaking at 10x",
      "section 7 scale milestones, pushed to a 270-site fabric");

  const MicrobenchResult micro = run_microbench();

  // Equivalence: identical seeded campaign, the only difference being
  // the rank-maintenance mode.  The incremental run doubles as the
  // throughput/Table-1 probe.
  const CampaignResult inc_run =
      run_campaign(/*incremental=*/true, /*print_tables=*/true);
  const CampaignResult full_run =
      run_campaign(/*incremental=*/false, /*print_tables=*/false);
  const bool identical = inc_run.match_log == full_run.match_log;

  // Kernel equivalence: the same incremental campaign on the legacy
  // kernel (pure-heap queue, full-graph fair-share re-solve).  The
  // calendar queue and the partial re-solve may only change the cost of
  // a run, never a decision, so the logs must match byte for byte.
  const CampaignResult legacy_run = run_campaign(
      /*incremental=*/true, /*print_tables=*/false, /*legacy_kernel=*/true);
  const bool kernel_identical = inc_run.match_log == legacy_run.match_log;

  using grid3::util::AsciiTable;
  const double hit_rate =
      inc_run.rank_evals + inc_run.rank_cache_hits > 0
          ? static_cast<double>(inc_run.rank_cache_hits) /
                static_cast<double>(inc_run.rank_evals +
                                    inc_run.rank_cache_hits)
          : 0.0;
  std::cout << "\ncampaign: " << inc_run.match_cycles << " match cycles, "
            << inc_run.rank_cache_hits << " cache hits / "
            << inc_run.rank_evals << " fresh evals ("
            << AsciiTable::percent(hit_rate) << " hit rate), "
            << static_cast<long>(inc_run.events_per_sec)
            << " events/s\n";

  const bool fast_enough = micro.speedup() >= 5.0;
  std::cout << "\nacceptance: incremental "
            << static_cast<long>(micro.cycles_per_sec_incremental)
            << " cycles/s vs full "
            << static_cast<long>(micro.cycles_per_sec_full) << " cycles/s at "
            << micro.sites << " sites -> "
            << AsciiTable::num(micro.speedup(), 1) << "x "
            << (fast_enough ? "(>= 5x)" : "(BELOW the 5x floor)") << '\n';
  std::cout << "acceptance: incremental vs full-rescore match decisions ("
            << inc_run.jobs << " jobs) -> "
            << (identical ? "IDENTICAL" : "DIVERGED")
            << (micro.same_choice ? "" : "; microbench picks DIVERGED too")
            << '\n';
  std::cout << "acceptance: calendar/partial kernel vs legacy "
               "heap/full-resolve campaign logs -> "
            << (kernel_identical ? "IDENTICAL" : "DIVERGED") << '\n';

  std::printf(
      "result-json: {\"sites\": %zu, \"total_cpus\": %d, \"jobs\": %zu, "
      "\"events_per_sec\": %.0f, \"match_cycles_per_sec_full\": %.0f, "
      "\"match_cycles_per_sec_incremental\": %.0f, \"match_speedup\": %.2f, "
      "\"identical_decisions\": %s, \"kernel_identical\": %s}\n",
      micro.sites, micro.total_cpus, inc_run.jobs, inc_run.events_per_sec,
      micro.cycles_per_sec_full, micro.cycles_per_sec_incremental,
      micro.speedup(), identical ? "true" : "false",
      kernel_identical ? "true" : "false");

  if (snapshot_path != nullptr &&
      write_snapshot(snapshot_path, micro, identical, kernel_identical,
                     inc_run) != 0) {
    return 1;
  }
  grid3::bench::scale_note();
  return (fast_enough && identical && kernel_identical && micro.same_choice)
             ? 0
             : 1;
}
