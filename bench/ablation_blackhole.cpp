// Ablation G: site-health circuit breakers vs unguarded matchmaking
// against a black-hole site (section 6.1: "more frequently a disk would
// fill up or a service would fail and all jobs submitted to a site would
// die"; section 6.2's ATLAS postmortem counts ~90% of failures as site
// problems).  A black hole fast-fails everything sent to it, so its
// queue always looks empty and load-aware ranking funnels the whole
// workload in.  One binary replays the same job stream twice -- without
// breakers (the status quo: operators notice eventually) and with the
// health monitor quarantining the site, probing it, and re-admitting it
// after repair.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "broker/broker.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "health/health.h"
#include "pacman/vdt.h"

namespace {

using namespace grid3;

// Fast enough (sub-second) that quick mode runs the full waves: the 5x
// drop criterion needs the full wave to amortize the fixed detection
// cost (the breaker's min-sample gate) that every run pays.
constexpr int kWave1Jobs = 240;        // submitted while the hole is open
constexpr int kWave2Jobs = 60;         // submitted after the repair
const Time kJobRuntime = Time::minutes(20);
const Time kRepairAt = Time::hours(12);
const Time kWave2At = Time::hours(24);
const Time kRunUntil = Time::hours(36);

struct Outcome {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::uint64_t bh_submissions = 0;      // gatekeeper-level, at the hole
  std::uint64_t bh_failed = 0;           // failed submissions at the hole
  std::uint64_t total_submissions = 0;   // across all gatekeepers
  std::uint64_t trips = 0, probes = 0, readmissions = 0;
  double first_trip_hours = -1.0;
  std::uint64_t bh_completed_after_repair = 0;
  bool counters_visible = false;
};

Outcome run_mode(bool breakers) {
  sim::Simulation sim;
  core::Grid3 grid{sim, bench::seed()};
  std::cout << "[mode " << (breakers ? "breakers" : "no breakers")
            << "] running ... " << std::flush;
  grid.add_vo("usatlas");
  pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                  Time::minutes(5));
  // The black hole is the biggest site on the grid: queue-depth ranking
  // loves its permanently empty queue.
  std::vector<std::pair<std::string, int>> sites{
      {"blackhole", 96}, {"good_a", 24}, {"good_b", 24}, {"good_c", 24}};
  for (const auto& [name, cpus] : sites) {
    core::SiteConfig c;
    c.name = name;
    c.owner_vo = "usatlas";
    c.cpus = cpus;
    c.policy.max_walltime = Time::hours(48);
    c.policy.dedicated = true;
    grid.add_site(c, /*reliability=*/1000.0);
    grid.site(name)->install_application(grid.igoc().pacman_cache(), "app");
    grid.site(name)->gatekeeper().set_submission_flake_rate(0.0);
    grid.site(name)->gatekeeper().set_environment_error_rate(0.0);
  }
  const vo::Certificate cert =
      grid.add_user("usatlas", "producer", vo::Role::kAppAdmin);
  const vo::VomsProxy proxy =
      *grid.make_proxy(cert, "usatlas", Time::hours(800));
  const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
  for (const auto& [name, cpus] : sites) {
    grid.site(name)->refresh_gridmap(servers);
  }
  grid.attach_broker("usatlas", broker::PolicyKind::kQueueDepth);
  if (breakers) grid.attach_health();
  grid.start_operations();
  sim.run_until(Time::minutes(6));

  // The environment at the big site is broken from the start: every job
  // it accepts runs, then dies to a misconfigured worker environment.
  grid.site("blackhole")->gatekeeper().set_environment_error_rate(1.0);
  sim.schedule_in(kRepairAt - sim.now(), [&] {
    grid.site("blackhole")->gatekeeper().set_environment_error_rate(0.0);
  });

  Outcome out;
  std::uint64_t bh_completed_at_repair = 0;
  sim.schedule_in(kRepairAt - sim.now(), [&] {
    bh_completed_at_repair =
        grid.site("blackhole")->gatekeeper().completions();
  });

  auto submit = [&] {
    broker::JobSpec spec;
    spec.vo = "usatlas";
    spec.app = "app";
    spec.required_app = "app";
    spec.runtime = kJobRuntime;
    gram::GramJob job;
    job.proxy = proxy;
    job.request.vo = "usatlas";
    job.request.user_dn = proxy.identity.subject_dn;
    job.request.requested_walltime = kJobRuntime + Time::hours(1);
    job.request.actual_runtime = kJobRuntime;
    grid.broker("usatlas")->submit(
        spec, std::move(job), [&](const broker::BrokeredResult& r) {
          (r.ok() ? out.completed : out.failed) += 1;
        });
  };
  // Wave 1: one job every 2 minutes while the hole is open.
  for (int i = 0; i < kWave1Jobs; ++i) {
    sim.schedule_in(Time::minutes(2) * i, submit);
  }
  // Wave 2: the same stream after repair -- a re-admitted site should
  // carry production again.
  for (int i = 0; i < kWave2Jobs; ++i) {
    sim.schedule_in(kWave2At - sim.now() + Time::minutes(2) * i, submit);
  }
  sim.run_until(kRunUntil);

  const gram::Gatekeeper& bh = grid.site("blackhole")->gatekeeper();
  out.bh_submissions = bh.submissions();
  out.bh_failed = bh.failures();
  for (const auto& [name, cpus] : sites) {
    out.total_submissions += grid.site(name)->gatekeeper().submissions();
  }
  out.bh_completed_after_repair = bh.completions() - bh_completed_at_repair;
  if (const health::SiteHealthMonitor* mon = grid.health()) {
    out.trips = mon->trips();
    out.probes = mon->probes();
    out.readmissions = mon->readmissions();
    for (const auto& e : mon->events()) {
      if (e.event == "trip") {
        out.first_trip_hours = e.at.to_hours();
        break;
      }
    }
    // Counters must be visible on the MetricBus and mirrored in ACDC.
    const auto acdc =
        grid.igoc().job_db().breaker_events(Time::zero(), Time::max());
    out.counters_visible =
        !grid.igoc().bus().series("blackhole", health::metric::kTrips)
             .empty() &&
        acdc.count("trip") != 0;
  }
  std::cout << "done (" << sim.executed() << " events, " << out.completed
            << "/" << (kWave1Jobs + kWave2Jobs) << " jobs)\n";
  return out;
}

}  // namespace

int main() {
  using grid3::util::AsciiTable;
  grid3::bench::header(
      "Ablation G: site-health circuit breakers vs a black-hole site",
      "sections 6.1 + 6.2: site problems killing all jobs sent to a site");

  const Outcome base = run_mode(/*breakers=*/false);
  const Outcome guarded = run_mode(/*breakers=*/true);

  AsciiTable table{{"breakers", "completed", "failed", "bh submissions",
                    "bh failed", "trips", "probes", "readmits",
                    "first trip (h)", "bh jobs post-repair"}};
  const auto row = [&](const std::string& label, const Outcome& o) {
    table.add_row(
        {label, AsciiTable::integer(static_cast<long>(o.completed)),
         AsciiTable::integer(static_cast<long>(o.failed)),
         AsciiTable::integer(static_cast<long>(o.bh_submissions)),
         AsciiTable::integer(static_cast<long>(o.bh_failed)),
         AsciiTable::integer(static_cast<long>(o.trips)),
         AsciiTable::integer(static_cast<long>(o.probes)),
         AsciiTable::integer(static_cast<long>(o.readmissions)),
         o.first_trip_hours < 0.0
             ? std::string{"-"}
             : AsciiTable::num(o.first_trip_hours, 2),
         AsciiTable::integer(
             static_cast<long>(o.bh_completed_after_repair))});
  };
  row("off (status quo)", base);
  row("on (quarantine + probe)", guarded);
  std::cout << '\n';
  table.print(std::cout);

  const bool no_worse = guarded.completed >= base.completed;
  const double drop =
      guarded.bh_failed > 0
          ? static_cast<double>(base.bh_failed) /
                static_cast<double>(guarded.bh_failed)
          : static_cast<double>(base.bh_failed);
  const bool big_drop = drop >= 5.0;
  const bool tripped = guarded.trips >= 1 && guarded.first_trip_hours >= 0.0;
  const bool readmitted = guarded.readmissions >= 1;
  const bool visible = guarded.counters_visible;
  std::cout << "\nacceptance: completions " << guarded.completed << " vs "
            << base.completed << " -> "
            << (no_worse ? "NO WORSE" : "WORSE")
            << "; black-hole failed submissions " << base.bh_failed
            << " -> " << guarded.bh_failed << " (" << drop << "x) -> "
            << (big_drop ? ">=5x DROP" : "<5x")
            << "; tripped=" << (tripped ? "yes" : "no")
            << " readmitted=" << (readmitted ? "yes" : "no")
            << " counters-visible=" << (visible ? "yes" : "no") << '\n';
  std::cout
      << "\nreading: without breakers the black hole's empty queue keeps "
         "winning the rank, so the stream funnels in and dies job by job "
         "-- the paper's operators broke this loop by hand with tickets "
         "and site-verify runs.  With breakers the EWMA trips within "
         "minutes of the first fast-fail burst, the site is quarantined "
         "(ticket opened, held jobs re-matched, gang leases returned), "
         "probe jobs re-certify it after the repair, and the stream "
         "returns -- at equal or better total completions.\n";
  grid3::bench::scale_note();
  return (no_worse && big_drop && tripped && readmitted && visible) ? 0 : 1;
}
