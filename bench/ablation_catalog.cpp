// Catalog sweep: one policy-stack comparison across the whole scenario
// catalog (docs/SCENARIOS.md).  Every named scenario runs twice -- once
// under the modern stack (queue-depth broker + incremental rank +
// placement leases + health breakers + calendar kernel + partial
// re-solve) and once under the legacy stack (the paper's favorite-sites
// status quo on the heap/full-resolve kernel) -- and each run prints
// one `result-json:` line with its counters and determinism digest.
//
// `--manifest PATH` additionally writes the digests as a JSON manifest;
// the committed bench/CATALOG_MANIFEST.json records the quick-mode
// digests per (scenario, stack) for the default seed, and
// scripts/check_bench.py --check-catalog regenerates and compares them
// in CI -- any nondeterminism or accidental behavior change in the
// generator, calendar, or placement stack shows up as a digest diff.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/table.h"
#include "workload/catalog.h"

namespace {

using namespace grid3;

void print_result_json(const workload::RunResult& r) {
  std::printf(
      "result-json: {\"scenario\": \"%s\", \"stack\": \"%s\", "
      "\"jobs\": %zu, \"completed\": %zu, \"failed\": %zu, "
      "\"workflows\": %llu, \"downtimes\": %zu, \"wan_events\": %zu, "
      "\"events\": %llu, \"wall_seconds\": %.2f, \"digest\": \"%s\"}\n",
      r.scenario.c_str(), r.stack.c_str(), r.jobs, r.completed, r.failed,
      static_cast<unsigned long long>(r.workflows), r.downtimes,
      r.wan_events, static_cast<unsigned long long>(r.events),
      r.wall_seconds, r.digest.c_str());
}

int write_manifest(const char* path,
                   const std::vector<workload::RunResult>& results) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "ablation_catalog: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"schema\": \"grid3-catalog-manifest-v1\",\n"
               "  \"seed\": %llu,\n"
               "  \"quick\": %s,\n"
               "  \"entries\": [\n",
               static_cast<unsigned long long>(bench::seed()),
               bench::quick() ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const workload::RunResult& r = results[i];
    std::fprintf(out,
                 "    {\"scenario\": \"%s\", \"stack\": \"%s\", "
                 "\"digest\": \"%s\", \"jobs\": %zu}%s\n",
                 r.scenario.c_str(), r.stack.c_str(), r.digest.c_str(),
                 r.jobs, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("catalog manifest -> %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* manifest_path = nullptr;
  const char* only = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--manifest") == 0 && i + 1 < argc) {
      manifest_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[i + 1];
    }
  }
  bench::header("Catalog sweep: modern vs legacy stack, every scenario",
                "sections 4/6 workloads as a reusable scenario catalog");

  const workload::StackConfig stacks[] = {workload::modern_stack(),
                                          workload::legacy_stack()};
  std::vector<workload::RunResult> results;
  bool all_ran = true;
  for (const std::string& name : workload::ScenarioCatalog::names()) {
    if (only != nullptr && name != only) continue;
    const workload::ScenarioSpec spec =
        workload::ScenarioCatalog::get(name, bench::seed());
    for (const workload::StackConfig& stack : stacks) {
      std::cout << "[" << name << " / " << stack.name << "] running ... "
                << std::flush;
      const workload::RunResult r =
          workload::run_scenario(spec, bench::quick(), stack);
      std::cout << "done (" << r.jobs << " jobs, "
                << util::AsciiTable::num(r.wall_seconds, 1) << "s wall)\n";
      if (r.jobs == 0) all_ran = false;
      // Campaign scenarios must actually launch workflows; historical
      // scenarios drive their own apps and report workflows = 0.
      if (!spec.campaigns.empty() && r.workflows == 0) all_ran = false;
      results.push_back(r);
    }
  }

  using util::AsciiTable;
  AsciiTable table{{"scenario", "stack", "jobs", "completion", "workflows",
                    "downtimes", "wan", "digest"}};
  for (const workload::RunResult& r : results) {
    const double completion =
        r.jobs > 0
            ? static_cast<double>(r.completed) / static_cast<double>(r.jobs)
            : 0.0;
    table.add_row({r.scenario, r.stack,
                   AsciiTable::integer(static_cast<long>(r.jobs)),
                   AsciiTable::percent(completion),
                   AsciiTable::integer(static_cast<long>(r.workflows)),
                   AsciiTable::integer(static_cast<long>(r.downtimes)),
                   AsciiTable::integer(static_cast<long>(r.wan_events)),
                   r.digest});
  }
  std::cout << '\n';
  table.print(std::cout);

  // Aggregate stack comparison across the catalog (the headline the
  // per-scenario JSON lines back up).
  std::size_t modern_ok = 0, modern_jobs = 0, legacy_ok = 0, legacy_jobs = 0;
  for (const workload::RunResult& r : results) {
    if (r.stack == "modern") {
      modern_ok += r.completed;
      modern_jobs += r.jobs;
    } else {
      legacy_ok += r.completed;
      legacy_jobs += r.jobs;
    }
  }
  const double modern_rate =
      modern_jobs > 0 ? static_cast<double>(modern_ok) /
                            static_cast<double>(modern_jobs)
                      : 0.0;
  const double legacy_rate =
      legacy_jobs > 0 ? static_cast<double>(legacy_ok) /
                            static_cast<double>(legacy_jobs)
                      : 0.0;
  std::cout << "\ncatalog completion: modern "
            << AsciiTable::percent(modern_rate) << " vs legacy "
            << AsciiTable::percent(legacy_rate) << "\n";
  std::cout << "acceptance: every (scenario, stack) run produced jobs "
               "(and campaign scenarios launched workflows) -> "
            << (all_ran ? "COMPLETE" : "INCOMPLETE") << '\n';

  for (const workload::RunResult& r : results) print_result_json(r);

  if (manifest_path != nullptr && write_manifest(manifest_path, results) != 0) {
    return 1;
  }
  bench::scale_note();
  return all_ran ? 0 : 1;
}
