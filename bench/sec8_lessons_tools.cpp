// Section 8 "lessons learned" tooling demonstration: the paper's own
// improvement list, implemented and run against a production window:
//   * troubleshooting API (job-ID linking, failure bursts correlated to
//     iGOC tickets -- no log parsing);
//   * job-execution-policy audit;
//   * end-to-end efficiency analysis per application class.
#include <iostream>

#include "bench_common.h"
#include "core/policy_audit.h"
#include "monitoring/troubleshoot.h"

int main() {
  using namespace grid3;
  bench::header("Section 8: lessons-learned tooling",
                "section 8 improvement list, implemented");

  auto run = bench::run_scenario(/*months=*/2);
  auto& grid = (*run)->grid();
  const auto w = apps::sc2003_window();

  // --- Troubleshooting: burst detection + ticket correlation ---------
  monitoring::Troubleshooter ts{grid.igoc().job_db()};
  std::vector<monitoring::IncidentWindow> incidents;
  for (const auto& t : grid.igoc().tickets().tickets()) {
    incidents.push_back({t.id, t.site, t.issue, t.opened,
                         t.closed.value_or(Time::max())});
  }
  auto bursts = monitoring::Troubleshooter::correlate(
      ts.find_bursts(w.from, w.to, /*min_failures=*/8), incidents);
  std::cout << "failure bursts in the SC2003 window: " << bursts.size()
            << "\n";
  std::size_t explained = 0;
  for (const auto& b : bursts) {
    if (b.ticket.has_value()) ++explained;
  }
  std::cout << "bursts explained by an iGOC ticket: " << explained << "/"
            << bursts.size() << "\n";
  if (!bursts.empty()) {
    const auto& b = bursts.front();
    std::cout << "largest burst: " << b.failures << " failures at "
              << b.site << " (" << b.dominant_class << ")"
              << (b.ticket ? ", ticket #" + std::to_string(*b.ticket)
                           : ", UNEXPLAINED")
              << "\n";
  }
  std::cout << "\ntop failure classes (direct query, no log parsing):\n";
  for (const auto& [cls, n] : ts.top_failure_classes(w.from, w.to, 5)) {
    std::cout << "  " << cls << ": " << n << "\n";
  }

  // ID linking round-trip on a sample record.
  for (const auto& r : grid.igoc().job_db().records()) {
    if (!r.gram_contact.empty() && !r.submit_id.empty()) {
      const auto* linked = ts.find_by_gram_contact(r.gram_contact);
      std::cout << "\nID linkage: execution-side " << r.gram_contact
                << " <-> submit-side "
                << (linked ? linked->submit_id : "??") << "\n";
      break;
    }
  }

  // --- Policy audit ----------------------------------------------------
  const auto report = core::PolicyAuditor{grid}.audit(w.from, w.to);
  std::cout << "\npolicy audit over " << report.sites_audited
            << " sites: " << report.count(core::AuditSeverity::kViolation)
            << " violations, " << report.count(core::AuditSeverity::kWarning)
            << " warnings\n";
  for (const auto& f : report.findings) {
    std::cout << "  [" << core::to_string(f.severity) << "] " << f.site
              << " " << f.check << ": " << f.detail << "\n";
  }

  // --- End-to-end efficiency -------------------------------------------
  std::cout << "\nend-to-end latency breakdown (queue+staging wait vs "
               "compute):\n";
  const auto viewer = (*run)->viewer();
  util::AsciiTable table{{"VO", "jobs", "avg wait (h)", "avg run (h)",
                          "compute efficiency"}};
  for (const auto& vo : grid.igoc().job_db().vos()) {
    if (vo == "local") continue;
    const auto lb = viewer.latency_breakdown(vo, w.from, w.to);
    if (lb.jobs == 0) continue;
    table.add_row({vo,
                   util::AsciiTable::integer(
                       static_cast<std::int64_t>(lb.jobs)),
                   util::AsciiTable::num(lb.avg_wait_hours, 2),
                   util::AsciiTable::num(lb.avg_run_hours, 2),
                   util::AsciiTable::percent(lb.compute_efficiency())});
  }
  table.print(std::cout);
  std::cout << "\nreading: the paper's unmet efficiency target traces to "
               "end-to-end wait, not compute -- exactly the analysis the "
               "lessons list calls for.\n";
  bench::scale_note();
  return 0;
}
