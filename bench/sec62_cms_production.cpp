// Regenerates the section 6.2 USCMS MOP production metrics: "more than
// 14 million GEANT4 full detector simulation events ... Approximately
// 70% of CMSIM and OSCAR jobs completed successfully ... We saw few
// random job losses: more frequently a disk would fill up or a service
// would fail and all jobs submitted to a site would die."
#include <iostream>
#include <map>

#include "bench_common.h"

int main() {
  using namespace grid3;
  bench::header("Section 6.2: USCMS MOP production",
                "section 6.2 narrative metrics");

  auto run = bench::run_scenario(/*months=*/6);
  const auto& db = (*run)->grid().igoc().job_db();
  const auto f = db.failures("uscms", Time::zero(), run->sim.now());
  const auto stats = db.stats_for("uscms", Time::zero(), run->sim.now());

  // Event yield: GEANT4 simulation throughput ~100 events/hour of
  // runtime at 2003 clock rates (50M-event data challenge over all
  // production; Grid3's share 14M+).
  double sim_hours = 0.0;
  for (const auto& r : db.records()) {
    if (r.vo == "uscms" && r.success) sim_hours += r.runtime().to_hours();
  }
  const double events = sim_hours * 100.0;

  util::AsciiTable table{{"metric", "paper", "measured"}};
  table.add_row({"completed jobs", "19354 (Table 1)",
                 util::AsciiTable::integer(
                     static_cast<std::int64_t>(stats.jobs))});
  table.add_row({"job success rate", "~70%",
                 util::AsciiTable::percent(1.0 - f.failure_rate())});
  table.add_row({"simulated events", ">14 million",
                 util::AsciiTable::num(events / 1e6, 1) + " million"});
  table.add_row({"mean runtime", "41.85 h",
                 util::AsciiTable::num(stats.avg_runtime_hours, 2) + " h"});
  table.add_row({"max runtime", "1238.93 h",
                 util::AsciiTable::num(stats.max_runtime_hours, 2) + " h"});
  table.print(std::cout);

  // "Few random job losses ... all jobs submitted to a site would die":
  // check failure clustering by computing per-site failure shares.
  std::map<std::string, std::pair<std::size_t, std::size_t>> per_site;
  for (const auto& r : db.records()) {
    if (r.vo != "uscms") continue;
    auto& [total, failed] = per_site[r.site];
    ++total;
    if (!r.success) ++failed;
  }
  std::cout << "\nper-site failure clustering (paper: failures come in "
               "groups from site service loss):\n";
  for (const auto& [site, counts] : per_site) {
    const double rate = counts.first > 0
                            ? static_cast<double>(counts.second) /
                                  static_cast<double>(counts.first)
                            : 0.0;
    std::cout << "  " << site << ": " << counts.second << "/" << counts.first
              << " failed (" << util::AsciiTable::percent(rate) << ")\n";
  }
  bench::scale_note();
  return 0;
}
