// Regenerates Figure 4: "CMS cumulative use of Grid2003.  The chart
// plots the distribution of usage (in CPU-days) by site in Grid2003
// over a 150 day period beginning in November 2003."
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace grid3;
  bench::header("Figure 4: CMS cumulative CPU-days by site (150 days)",
                "Figure 4, section 6.2");

  auto run = bench::run_scenario(/*months=*/6);
  const auto viewer = (*run)->viewer();
  const auto w = apps::cms150_window();
  const auto by_site = viewer.cpu_days_by_site("uscms", w.from, w.to);

  std::cout << util::bar_chart(by_site, 48, "CPU-days") << "\n";

  double total = 0.0;
  for (const auto& [site, days] : by_site) total += days;
  std::cout << "sites used by CMS: " << by_site.size()
            << " (paper: production on 11 sites, Table 1 lists 18 used)\n";
  if (!by_site.empty()) {
    std::cout << "largest single site share: "
              << util::AsciiTable::percent(by_site.front().second /
                                           std::max(total, 1e-9))
              << " at " << by_site.front().first
              << " (paper: FNAL Tier1 dominates; Table 1 peak-month single-"
                 "resource share 48.4%)\n";
  }
  // Long OSCAR jobs gate on queue walltime limits: confirm the long-queue
  // sites carry a disproportionate share (section 6.2).
  double long_site_days = 0.0;
  for (const auto& [site, days] : by_site) {
    if (site == "FNAL_CMS" || site == "CIT_PG" || site == "UFL_PG") {
      long_site_days += days;
    }
  }
  std::cout << "share at the three long-walltime queues: "
            << util::AsciiTable::percent(long_site_days /
                                         std::max(total, 1e-9))
            << " (paper: not all sites could accommodate 30h+ OSCAR jobs)\n";
  bench::scale_note();
  return 0;
}
