// Ablation A: the paper's section 6.2 claim that "storage reservation
// (e.g., as provided by SRM) would have prevented various
// storage-related service failures."
//
// Setup: a contended storage element behind a modest WAN link.  Archive
// transfers arrive in bursts while local churn eats disk and completed
// files wait hours for tape migration.  Bare GridFTP checks free space
// only when a transfer *starts*; concurrent transfers all pass the check
// and collide when they land (hours of transfer work lost).  SRM claims
// the space up front, converting those losses into instant refusals the
// submit side can simply retry.
#include <iostream>

#include "bench_common.h"
#include "gridftp/gridftp.h"
#include "net/network.h"
#include "srm/srm.h"
#include "util/stats.h"

namespace {

using namespace grid3;

struct Result {
  int ok = 0;
  int no_space = 0;   // failed after moving the bytes (work lost)
  int refused = 0;    // refused before moving anything (retryable)
  double lost_transfer_hours = 0.0;  // wall-clock wasted on dead transfers
};

Result run_trial(bool with_srm, std::uint64_t seed) {
  sim::Simulation sim;
  net::Network net{sim};
  gridftp::GridFtpClient client{sim, net};
  util::Rng rng{seed};

  const auto src_node = net.add_node({"SRC", Bandwidth::gbps(1),
                                      Bandwidth::gbps(1), true});
  // A modest SE uplink: a 12 GB file takes ~16 minutes unconstrained,
  // longer under contention -- a wide race window.
  const auto se_node = net.add_node({"SE", Bandwidth::mbps(100),
                                     Bandwidth::mbps(100), true});
  gridftp::GridFtpServer src{"SRC", src_node};
  gridftp::GridFtpServer se_ftp{"SE", se_node};
  srm::DiskVolume disk{"se:/pool", Bytes::gb(300)};
  srm::StorageResourceManager se{"se", disk};

  // Local churn: +1.5 GB every 20 minutes, wiped daily (section 6.2's
  // "a disk would fill up").
  Bytes churn;
  sim::PeriodicProcess pressure{sim, Time::minutes(20), [&] {
                                  disk.consume_unmanaged(Bytes::gb(1.5));
                                  churn += Bytes::gb(1.5);
                                  return true;
                                }};
  pressure.start();
  sim::PeriodicProcess cleanup{sim, Time::hours(24), [&] {
                                 disk.cleanup(churn);
                                 churn = Bytes::zero();
                                 return true;
                               }};
  cleanup.start(Time::hours(24));
  // SRM housekeeping: expired reservations are swept on a short period.
  sim::PeriodicProcess sweeper{sim, Time::minutes(30), [&] {
                                 se.sweep(sim.now());
                                 return true;
                               }};
  sweeper.start();

  Result result;
  // 200 archive transfers over ~3 days, arriving in bursts of 2-4.
  int scheduled = 0;
  Time at;
  while (scheduled < 200) {
    at += Time::minutes(rng.exponential(30.0));
    const int burst = static_cast<int>(rng.uniform_int(2, 4));
    for (int b = 0; b < burst && scheduled < 200; ++b, ++scheduled) {
      const Bytes size = Bytes::gb(rng.uniform(8.0, 14.0));
      const int idx = scheduled;
      sim.schedule_at(at, [&, size, idx] {
        gridftp::TransferRequest req;
        req.src = &src;
        req.dst = &se_ftp;
        req.size = size;
        req.lfn = "archive/" + std::to_string(idx);
        if (with_srm) {
          // Volatile space, released by the sweeper after migration.
          // Lifetime comfortably exceeds any transfer duration, so the
          // sweeper never reclaims an in-flight reservation.
          const auto r = se.reserve("vo", size, srm::SpaceType::kVolatile,
                                    sim.now(), Time::hours(12));
          if (!r.has_value()) {
            ++result.refused;  // instant, nothing moved, retry later
            return;
          }
          req.dest_srm = &se;
          req.reservation = *r;
          req.retry.max_retries = 0;
        } else {
          req.dest_volume = &disk;
          req.retry.max_retries = 0;
        }
        const auto reservation = req.reservation;
        client.transfer(std::move(req),
                        [&, reservation](const gridftp::TransferRecord& rec) {
                          if (rec.ok()) {
                            ++result.ok;
                            // Tape migration frees the pool after 4 h
                            // (releasing the SRM reservation on that path).
                            if (!with_srm) {
                              sim.schedule_in(Time::hours(4), [&, rec] {
                                disk.release(rec.requested);
                              });
                            } else {
                              sim.schedule_in(Time::hours(4),
                                              [&, reservation] {
                                                se.release(reservation);
                                              });
                            }
                          } else if (rec.status ==
                                     gridftp::TransferStatus::kFailedNoSpace) {
                            ++result.no_space;
                            result.lost_transfer_hours +=
                                (rec.finished - rec.started).to_hours();
                          }
                        });
      });
    }
  }
  sim.run_until(Time::days(4));
  return result;
}

}  // namespace

int main() {
  using grid3::util::AsciiTable;
  grid3::bench::header(
      "Ablation A: SRM space reservation vs bare GridFTP",
      "section 6.2: \"storage reservation would have prevented various "
      "storage-related service failures\"");

  AsciiTable table{{"configuration", "completed",
                    "mid-transfer no-space failures",
                    "transfer-hours wasted", "up-front refusals"}};
  for (const bool with_srm : {false, true}) {
    grid3::util::OnlineStats ok, lost, refused, wasted;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto r = run_trial(with_srm, seed);
      ok.add(r.ok);
      lost.add(r.no_space);
      refused.add(r.refused);
      wasted.add(r.lost_transfer_hours);
    }
    table.add_row({with_srm ? "SRM reservations" : "bare GridFTP + RLS",
                   AsciiTable::num(ok.mean(), 1),
                   AsciiTable::num(lost.mean(), 1),
                   AsciiTable::num(wasted.mean(), 1),
                   AsciiTable::num(refused.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nreading: bare GridFTP loses hours of completed transfer "
               "work when concurrent archives pass the start-time space "
               "probe and collide on landing; SRM converts every such loss "
               "into an instant, retryable refusal -- the paper's claim "
               "that reservations would have prevented the storage-related "
               "failures.\n";
  return 0;
}
