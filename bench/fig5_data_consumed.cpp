// Regenerates Figure 5: "Data consumed by Grid3 sites, by VO.  Nearly
// 100 TB was transferred during 30 days before and after SC2003 (top
// curve is total from all sources).  The GridFTP demonstrator accounted
// for most data transferred on Grid3."
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace grid3;
  bench::header("Figure 5: data consumed by Grid3 sites, by VO",
                "Figure 5, section 6.3");

  auto run = bench::run_scenario(/*months=*/2);
  const auto& db = (*run)->grid().igoc().job_db();
  const auto w = apps::sc2003_window();

  const auto by_vo = db.bytes_consumed_by_vo(w.from, w.to);
  util::AsciiTable table{{"VO", "total TB", "demonstrator TB", "app TB"}};
  Bytes total, demo;
  for (const auto& [vo, pair] : by_vo) {
    table.add_row({vo, util::AsciiTable::num(pair.first.to_tb(), 2),
                   util::AsciiTable::num(pair.second.to_tb(), 2),
                   util::AsciiTable::num(
                       (pair.first - pair.second).to_tb(), 2)});
    total += pair.first;
    demo += pair.second;
  }
  table.print(std::cout);
  std::cout << "\ntotal consumed in the 30-day window: "
            << util::AsciiTable::num(total.to_tb(), 1)
            << " TB (paper: ~100 TB before+after SC2003)\n"
            << "demonstrator share: "
            << util::AsciiTable::percent(demo / std::max(total, Bytes::of(1)))
            << " (paper: the GridFTP demo accounted for most data)\n"
            << "average per day: "
            << util::AsciiTable::num(total.to_tb() / 30.0, 2)
            << " TB/day (target 2-3, achieved 4)\n";

  std::cout << "\ntop consuming sites:\n";
  const auto by_site = db.bytes_consumed_by_site(w.from, w.to);
  std::vector<std::pair<std::string, double>> chart;
  for (const auto& [site, bytes] : by_site) {
    chart.emplace_back(site, bytes.to_tb());
  }
  std::sort(chart.begin(), chart.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (chart.size() > 10) chart.resize(10);
  std::cout << util::bar_chart(chart, 40, "TB");
  bench::scale_note();
  return 0;
}
