// Ablation F: gang-matching vs per-job matching for wide DAG levels
// (section 5.2 runs CMS/ATLAS production as levels of identical
// simulations feeding a merge; section 6.2 attributes failures and
// wasted transfer to intermediate products scattered across sites).
// One binary replays the same level-structured workload twice -- with
// the planner tagging each level as a gang that the broker places as a
// unit, and without (the status quo: every sibling is matched
// independently, so queue-depth balancing scatters a level across the
// grid and its intermediates must be re-gathered before the merge).
#include <cstdint>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "broker/broker.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "pacman/vdt.h"
#include "placement/ledger.h"
#include "workflow/dag.h"
#include "workflow/dagman.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace {

using namespace grid3;

constexpr int kWorkflows = 12;
constexpr int kWidth = 5;             // simulations per level
const Bytes kIntermediate = Bytes::gb(2);  // each simulation's product

struct Outcome {
  std::size_t completed = 0;
  std::size_t failed = 0;
  /// Minimum bytes that must cross sites to gather each level's
  /// intermediates at one place (output volume landing off the level's
  /// majority site).  Zero when the whole level ran together.
  Bytes scatter = Bytes::zero();
  /// Bytes the merges actually pulled from sites other than their own.
  Bytes merge_pull = Bytes::zero();
  std::uint64_t gang_matches = 0;
  std::uint64_t gang_splits = 0;
  std::uint64_t gang_leases = 0;
  std::size_t peak_burst = 0;  // worst one-minute gatekeeper arrivals
};

Outcome run_mode(bool gangs) {
  sim::Simulation sim;
  core::Grid3 grid{sim, bench::seed()};
  std::cout << "[mode " << (gangs ? "gang matching" : "per-job matching")
            << "] running ... " << std::flush;
  grid.add_vo("usatlas");
  pacman::add_application_package(grid.igoc().pacman_cache(), "gce",
                                  Time::minutes(5));
  const std::vector<std::string> sites{"GRID_A", "GRID_B", "GRID_C",
                                       "GRID_D"};
  for (const std::string& name : sites) {
    core::SiteConfig c;
    c.name = name;
    c.owner_vo = "usatlas";
    c.cpus = 10;
    c.policy.max_walltime = Time::hours(48);
    c.policy.dedicated = true;
    grid.add_site(c, /*reliability=*/1000.0);
    grid.site(name)->install_application(grid.igoc().pacman_cache(), "gce");
  }
  const vo::Certificate cert =
      grid.add_user("usatlas", "producer", vo::Role::kAppAdmin);
  const vo::VomsProxy proxy =
      *grid.make_proxy(cert, "usatlas", Time::hours(400));
  const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
  for (const std::string& name : sites) {
    grid.site(name)->refresh_gridmap(servers);
    grid.site(name)->gatekeeper().set_submission_flake_rate(0.0);
    grid.site(name)->gatekeeper().set_environment_error_rate(0.0);
  }
  grid.attach_broker("usatlas", broker::PolicyKind::kQueueDepth);
  grid.start_operations();
  sim.run_until(Time::minutes(1));

  Outcome out;
  // Kept per workflow so the scatter metric can be computed from the
  // planned edge structure + the actual completion sites.
  std::vector<workflow::ConcreteDag> plans(kWorkflows);
  std::vector<std::optional<workflow::DagRunStats>> stats(kWorkflows);
  std::size_t plan_failures = 0;
  auto submit = [&](int i) {
    workflow::VirtualDataCatalog vdc;
    vdc.add_transformation({"gce", "1", "gce"});
    std::vector<std::string> mids;
    for (int m = 0; m < kWidth; ++m) {
      workflow::Derivation d;
      d.id = "sim" + std::to_string(m);
      d.transformation = "gce";
      d.outputs = {"w" + std::to_string(i) + ".mid" + std::to_string(m)};
      d.runtime = Time::minutes(100);
      d.output_size = kIntermediate;
      d.scratch = Bytes::gb(1);
      vdc.add_derivation(d);
      mids.push_back(d.outputs.front());
    }
    workflow::Derivation merge;
    merge.id = "merge";
    merge.transformation = "gce";
    merge.inputs = mids;
    merge.outputs = {"w" + std::to_string(i) + ".summary"};
    merge.runtime = Time::minutes(30);
    merge.output_size = Bytes::gb(1);
    merge.scratch = Bytes::gb(1);
    vdc.add_derivation(merge);

    workflow::PegasusPlanner planner{grid.igoc().top_giis(),
                                     *grid.rls("usatlas")};
    planner.set_broker(grid.broker("usatlas"));
    workflow::PlannerConfig cfg;
    cfg.vo = "usatlas";
    cfg.gang_matching = gangs;
    util::Rng rng{static_cast<std::uint64_t>(1000 + i)};
    auto plan = planner.plan(*vdc.request(merge.outputs), cfg, rng,
                             sim.now());
    if (!plan.has_value()) {
      ++plan_failures;
      return;
    }
    plans[i] = *plan;
    grid.dagman("usatlas").run(
        std::move(*plan), proxy,
        [&, i](const workflow::DagRunStats& s) { stats[i] = s; });
  };
  for (int i = 0; i < kWorkflows; ++i) {
    sim.schedule_in(Time::minutes(40) * i, [&submit, i] { submit(i); });
  }
  sim.run_until(sim.now() + Time::days(3));

  for (int i = 0; i < kWorkflows; ++i) {
    if (!stats[i].has_value()) continue;
    const workflow::DagRunStats& s = *stats[i];
    if (s.success) {
      ++out.completed;
    } else {
      ++out.failed;
      continue;
    }
    // Group compute->compute edges by consumer; the level's scatter is
    // what landed off its majority site.
    std::map<std::size_t, std::vector<std::size_t>> parents_of;
    for (const auto& [p, c] : plans[i].edges) {
      if (plans[i].nodes[p].type == workflow::NodeType::kCompute &&
          plans[i].nodes[c].type == workflow::NodeType::kCompute) {
        parents_of[c].push_back(p);
      }
    }
    for (const auto& [child, parents] : parents_of) {
      std::map<std::string, std::size_t> by_site;
      std::size_t majority = 0;
      for (std::size_t p : parents) {
        majority = std::max(majority, ++by_site[s.node_results[p].site]);
        if (s.node_results[p].site != s.node_results[child].site) {
          out.merge_pull = out.merge_pull + kIntermediate;
        }
      }
      for (std::size_t stray = parents.size() - majority; stray > 0;
           --stray) {
        out.scatter = out.scatter + kIntermediate;
      }
    }
  }
  const broker::ResourceBroker* b = grid.broker("usatlas");
  out.gang_matches = b->gang_matches();
  out.gang_splits = b->gang_splits();
  if (const placement::PlacementLedger* l = grid.placement("usatlas")) {
    out.gang_leases = l->acquired();
  }
  for (const std::string& name : sites) {
    out.peak_burst = std::max(
        out.peak_burst, grid.site(name)->gatekeeper().peak_one_minute_arrivals());
  }
  std::cout << "done (" << sim.executed() << " events, " << out.completed
            << "/" << kWorkflows << " workflows";
  if (plan_failures > 0) std::cout << ", " << plan_failures << " unplanned";
  std::cout << ")\n";
  return out;
}

}  // namespace

int main() {
  using grid3::util::AsciiTable;
  grid3::bench::header(
      "Ablation F: gang-matching vs per-job matching for DAG levels",
      "sections 5.2 + 6.2: production levels, intermediate-product "
      "placement");

  const Outcome base = run_mode(/*gangs=*/false);
  const Outcome ganged = run_mode(/*gangs=*/true);

  AsciiTable table{{"matching", "completed", "failed", "scatter GB",
                    "merge pull GB", "gangs", "splits", "gang leases",
                    "peak burst"}};
  const auto row = [&](const std::string& label, const Outcome& o) {
    table.add_row({label,
                   AsciiTable::integer(static_cast<long>(o.completed)),
                   AsciiTable::integer(static_cast<long>(o.failed)),
                   AsciiTable::num(o.scatter.to_gb(), 1),
                   AsciiTable::num(o.merge_pull.to_gb(), 1),
                   AsciiTable::integer(static_cast<long>(o.gang_matches)),
                   AsciiTable::integer(static_cast<long>(o.gang_splits)),
                   AsciiTable::integer(static_cast<long>(o.gang_leases)),
                   AsciiTable::integer(static_cast<long>(o.peak_burst))});
  };
  row("per-job (independent siblings)", base);
  row("gang (level placed as a unit)", ganged);
  std::cout << '\n';
  table.print(std::cout);

  const bool less_scatter = ganged.scatter < base.scatter;
  const bool no_worse_completion = ganged.completed >= base.completed;
  std::cout << "\nacceptance: gang-matched intermediate scatter "
            << ganged.scatter.to_gb() << " GB vs per-job "
            << base.scatter.to_gb() << " GB -> "
            << (less_scatter ? "LESS" : "NOT LESS") << "; completions "
            << ganged.completed << " vs " << base.completed << " -> "
            << (no_worse_completion ? "NO WORSE" : "WORSE") << '\n';
  std::cout
      << "\nreading: per-job matching scores each sibling independently, "
         "so queue-depth balancing does exactly what it is built to do -- "
         "it spreads a level across the grid, and every off-majority "
         "intermediate must later cross a site boundary to be merged.  "
         "Gang matching ranks sites by whether the WHOLE level fits "
         "(free slots vs width, aggregate storage headroom via one "
         "gang-scoped lease, predicted gatekeeper burst) and binds the "
         "level to one site, so the intermediates are born co-resident "
         "and the merge reads them from local disk.\n";
  grid3::bench::scale_note();
  return (less_scatter && no_worse_completion) ? 0 : 1;
}
