// Regenerates the section 7 milestones and metrics scorecard: targets,
// the paper's reported achievement, and this run's measurement.
#include <iostream>

#include "bench_common.h"
#include "core/metrics.h"

int main() {
  using namespace grid3;
  bench::header("Section 7: milestones and metrics",
                "section 7 scorecard");

  auto run = bench::run_scenario(/*months=*/2);
  const auto w = apps::sc2003_window();
  const auto m = core::compute_milestones((*run)->grid(), w.from, w.to);

  util::AsciiTable table{{"milestone", "target", "paper", "measured",
                          "met"}};
  for (const auto& row : m.scorecard()) {
    table.add_row({row.name, row.target, row.paper, row.measured,
                   row.met ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nper-VO completion efficiency (paper: varies by "
               "application; >90% on well-run sites):\n";
  for (const auto& [vo, eff] : m.efficiency_by_vo) {
    std::cout << "  " << vo << ": " << util::AsciiTable::percent(eff)
              << "\n";
  }
  std::cout << "\ntrouble tickets during window: "
            << (*run)->grid().igoc().tickets().total() << " opened, mean "
               "resolution "
            << util::AsciiTable::num(
                   (*run)->grid().igoc().tickets().mean_resolution().to_hours(),
                   1)
            << " h\n";
  bench::scale_note();
  return 0;
}
