// Ablation G: multi-SE failover chains vs a single archive SE (section
// 6.1 counts "disk space exhausted at the destination" among the top
// storage failure causes; section 8 calls for grid-level data placement
// that can route around a full or unhealthy storage element).  One
// binary replays the same archive-bound workload twice with stage-out
// leases on throughout -- once with only the FNAL SE behind the
// placement intent (a refused lease can only hold and eventually fail),
// and once with a UCSD fallback SE chained behind it (a refused lease
// falls through and the output archives one hop down the chain).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "broker/broker.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "monitoring/acdc.h"
#include "monitoring/mdviewer.h"
#include "pacman/vdt.h"
#include "placement/ledger.h"
#include "workflow/dagman.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace {

using namespace grid3;

const int kWorkflows = bench::quick_or(48, 16);
const int kHorizonDays = bench::quick_or(4, 2);
const Bytes kOutput = Bytes::gb(8);

struct Outcome {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::uint64_t disk_full = 0;   // nodes failed with the disk-full class
  std::uint64_t no_space = 0;    // stage-outs that hit a full archive
  std::uint64_t holds = 0;       // matches parked awaiting space
  std::uint64_t rejects = 0;     // whole-chain lease refusals
  std::uint64_t fallthroughs = 0;  // hops past a refused SE
  std::uint64_t acdc_hops = 0;   // hop-count visible in accounting
  std::size_t fallback_outputs = 0;  // replicas archived at the fallback
};

Outcome run_mode(bool chains) {
  sim::Simulation sim;
  core::Grid3 grid{sim, bench::seed()};
  std::cout << "[mode " << (chains ? "failover chain" : "single SE")
            << "] running ... " << std::flush;
  grid.add_vo("uscms");
  pacman::add_application_package(grid.igoc().pacman_cache(), "mop",
                                  Time::minutes(5));
  // Three dedicated T2 execution sites; FNAL's tape-fronting disk is
  // sized well under the workload's steady-state demand so it genuinely
  // fills, and UCSD is the roomy fallback SE.  Both SEs exist in both
  // modes -- only the placement intent's chain differs.
  const std::vector<std::string> exec_sites{"T2_A", "T2_B", "T2_C"};
  for (const std::string& name : exec_sites) {
    core::SiteConfig c;
    c.name = name;
    c.owner_vo = "uscms";
    c.cpus = 24;
    c.policy.max_walltime = Time::hours(48);
    c.policy.dedicated = true;
    grid.add_site(c, /*reliability=*/1000.0);
    grid.site(name)->install_application(grid.igoc().pacman_cache(), "mop");
  }
  for (const auto& [name, disk] :
       std::vector<std::pair<std::string, Bytes>>{
           {"FNAL", Bytes::gb(60)}, {"UCSD", Bytes::gb(500)}}) {
    core::SiteConfig se;
    se.name = name;
    se.owner_vo = "uscms";
    se.cpus = 2;
    se.disk = disk;
    se.deploy_srm = true;
    se.policy.dedicated = true;
    grid.add_site(se, /*reliability=*/1000.0);
  }

  const vo::Certificate cert =
      grid.add_user("uscms", "producer", vo::Role::kAppAdmin);
  const vo::VomsProxy proxy = *grid.make_proxy(cert, "uscms",
                                               Time::hours(400));
  const std::vector<const vo::VomsServer*> servers{grid.voms("uscms")};
  for (const auto& s : grid.sites()) {
    s->refresh_gridmap(servers);
    s->gatekeeper().set_submission_flake_rate(0.0);
    s->gatekeeper().set_environment_error_rate(0.0);
  }

  broker::BrokerConfig bcfg;
  bcfg.placement_leases = true;
  // A short hold window makes the single-SE failure mode visible: a match
  // that cannot reserve space anywhere on its chain fails as disk-full
  // instead of waiting out the tape drain.
  bcfg.hold.deadline = Time::hours(2);
  grid.attach_broker("uscms", broker::PolicyKind::kQueueDepth, bcfg);
  grid.start_operations();
  sim.run_until(Time::minutes(1));

  Outcome out;
  std::size_t plan_failures = 0;
  auto submit = [&](int i) {
    workflow::VirtualDataCatalog vdc;
    vdc.add_transformation({"mop", "1", "mop"});
    workflow::Derivation d;
    d.id = "w" + std::to_string(i);
    d.transformation = "mop";
    d.outputs = {"out" + std::to_string(i)};
    d.runtime = Time::minutes(90);
    d.output_size = kOutput;
    d.scratch = Bytes::gb(1);
    vdc.add_derivation(d);
    workflow::PegasusPlanner planner{grid.igoc().top_giis(),
                                     *grid.rls("uscms")};
    planner.set_broker(grid.broker("uscms"));
    workflow::PlannerConfig cfg;
    cfg.vo = "uscms";
    cfg.archive_site = "FNAL";
    if (chains) cfg.archive_fallbacks = {"UCSD"};
    util::Rng rng{static_cast<std::uint64_t>(1000 + i)};
    auto plan = planner.plan(*vdc.request(d.outputs), cfg, rng, sim.now());
    if (!plan.has_value()) {
      ++plan_failures;
      return;
    }
    grid.dagman("uscms").run(
        std::move(*plan), proxy, [&, i](const workflow::DagRunStats& s) {
          for (const auto& r : s.node_results) {
            out.disk_full += r.failure_class == "disk-full";
          }
          if (!s.success) {
            ++out.failed;
            return;
          }
          ++out.completed;
          // RLS tells us which SE actually archived the output (chains
          // may have resolved the lease one hop down); tape migration
          // drains that disk a few hours later.
          const auto locs =
              grid.rls("uscms")->locate("out" + std::to_string(i),
                                        sim.now());
          const std::string se = locs.empty() ? "FNAL" : locs[0].first;
          out.fallback_outputs += se == "UCSD";
          sim.schedule_in(Time::hours(4), [&grid, se] {
            grid.volume(se)->release(kOutput);
          });
        });
  };
  // One 8 GB producer every 15 minutes: ~32 GB/h of archive inflow
  // against a 60 GB primary disk draining on a 4-hour tape delay.
  for (int i = 0; i < kWorkflows; ++i) {
    sim.schedule_in(Time::minutes(15) * i, [&submit, i] { submit(i); });
  }
  sim.run_until(sim.now() + Time::days(kHorizonDays));

  for (const std::string& name : exec_sites) {
    out.no_space += grid.site(name)->gatekeeper().stage_out_no_space();
  }
  out.disk_full += out.no_space;
  out.holds = grid.broker("uscms")->storage_holds();
  if (const placement::PlacementLedger* l = grid.placement("uscms")) {
    out.rejects = l->rejected();
    out.fallthroughs = l->fallthroughs();
  }
  // Hop visibility: the same count must be recoverable from the iGOC
  // accounting database (and therefore from MDViewer).
  const monitoring::MdViewer viewer{grid.igoc().job_db(),
                                    grid.igoc().bus()};
  out.acdc_hops = viewer.lease_fallthrough_hops(Time::zero(), sim.now());
  std::cout << "done (" << sim.executed() << " events, " << out.completed
            << "/" << kWorkflows << " workflows";
  if (plan_failures > 0) std::cout << ", " << plan_failures << " unplanned";
  std::cout << ")\n";
  return out;
}

}  // namespace

int main() {
  using grid3::util::AsciiTable;
  grid3::bench::header(
      "Ablation G: multi-SE failover chains vs a single archive SE",
      "sections 6.1 + 8: storage failures, grid-level data placement");

  const Outcome single = run_mode(/*chains=*/false);
  const Outcome chain = run_mode(/*chains=*/true);

  AsciiTable table{{"placement", "completed", "failed", "disk-full class",
                    "storage holds", "lease rejects", "fallthroughs",
                    "acdc hops", "fallback outputs"}};
  const auto row = [&](const std::string& label, const Outcome& o) {
    table.add_row({label,
                   AsciiTable::integer(static_cast<long>(o.completed)),
                   AsciiTable::integer(static_cast<long>(o.failed)),
                   AsciiTable::integer(static_cast<long>(o.disk_full)),
                   AsciiTable::integer(static_cast<long>(o.holds)),
                   AsciiTable::integer(static_cast<long>(o.rejects)),
                   AsciiTable::integer(static_cast<long>(o.fallthroughs)),
                   AsciiTable::integer(static_cast<long>(o.acdc_hops)),
                   AsciiTable::integer(
                       static_cast<long>(o.fallback_outputs))});
  };
  row("single SE (FNAL only)", single);
  row("failover chain (FNAL -> UCSD)", chain);
  std::cout << '\n';
  table.print(std::cout);

  // Acceptance: archive-side disk-full-class failures drop at least 5x
  // at equal-or-better completions, and the fallthrough hops that made
  // that happen are visible on the bus and in ACDC.
  const bool five_fold = chain.disk_full * 5 <= single.disk_full &&
                         single.disk_full > 0;
  const bool no_worse_completion = chain.completed >= single.completed;
  const bool hops_visible =
      chain.fallthroughs > 0 && chain.acdc_hops > 0;
  std::cout << "\nresult-json: {\"single_disk_full\": " << single.disk_full
            << ", \"chain_disk_full\": " << chain.disk_full
            << ", \"single_completed\": " << single.completed
            << ", \"chain_completed\": " << chain.completed
            << ", \"fallthroughs\": " << chain.fallthroughs
            << ", \"acdc_hops\": " << chain.acdc_hops
            << ", \"fallback_outputs\": " << chain.fallback_outputs << "}\n";
  std::cout << "acceptance: chained disk-full-class failures "
            << chain.disk_full << " vs single-SE " << single.disk_full
            << " -> " << (five_fold ? ">=5x FEWER" : "NOT 5x FEWER")
            << "; completions " << chain.completed << " vs "
            << single.completed << " -> "
            << (no_worse_completion ? "NO WORSE" : "WORSE")
            << "; fallthrough hops "
            << (hops_visible ? "VISIBLE" : "NOT VISIBLE")
            << " (bus+acdc)\n";
  std::cout
      << "\nreading: with one SE behind the intent, a full FNAL disk can "
         "only park the match until the hold expires -- the workload's "
         "inflow outruns the 4-hour tape drain, so holds become "
         "disk-full failures.  With UCSD chained behind FNAL the same "
         "refusal falls through: the lease resolves one hop down, the "
         "gatekeeper stages out to the SE that actually holds the "
         "reservation, and RLS registers the replica where it landed.  "
         "Every hop is published on the MetricBus and accounted in ACDC, "
         "so operators can see exactly how often the primary refused.\n";
  grid3::bench::scale_note();
  return (five_fold && no_worse_completion && hops_visible) ? 0 : 1;
}
