// Regenerates Table 1: "Grid3 computational job statistics based on
// completed production jobs from the period of October 23, 2003 to
// April 23, 2004 (source ACDC University at Buffalo)."
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"

namespace {

struct PaperColumn {
  const char* label;      // Table 1 header
  const char* record_vo;  // our ACDC classification key
  double users, sites, jobs, avg_h, max_h, cpu_days;
  double peak_jobs, peak_sites, max_single_jobs, max_single_pct;
  const char* peak_month;
  double peak_cpu_days;
};

// The paper's Table 1, verbatim.
constexpr PaperColumn kPaper[] = {
    {"BTEV", "btev", 1, 8, 2598, 1.77, 118.27, 191.88, 2377, 7, 1421, 59.8,
     "11-2003", 129.46},
    {"iVDGL", "ivdgl", 24, 19, 58145, 1.22, 291.74, 2945.79, 25722, 15,
     22671, 88.1, "11-2003", 1244.97},
    {"LIGO", "ligo", 7, 1, 3, 0.01, 0.02, 0.01, 3, 1, 3, 100.0, "12-2003",
     0.01},
    {"SDSS", "sdss", 9, 13, 5410, 1.46, 152.90, 329.44, 1564, 4, 1120, 71.6,
     "02-2004", 65.91},
    {"USATLAS", "usatlas", 25, 18, 7455, 8.81, 292.40, 2736.05, 3198, 17,
     901, 28.2, "11-2003", 696.48},
    {"USCMS", "uscms", 26, 18, 19354, 41.85, 1238.93, 33750.14, 8834, 17,
     4820, 48.4, "11-2003", 1981.95},
    {"Exerciser", "exerciser", 3, 14, 198272, 0.13, 36.45, 1034.28, 72224,
     7, 38512, 53.4, "12-2003", 51.78},
};

}  // namespace

int main() {
  using namespace grid3;
  using util::AsciiTable;
  bench::header("Table 1: Grid3 computational job statistics",
                "Table 1 (ACDC accounting, Oct 23 2003 - Apr 23 2004)");

  auto run = bench::run_scenario(/*months=*/7);
  const auto& db = (*run)->grid().igoc().job_db();
  const auto w = apps::table1_window();

  AsciiTable table{{"metric", "source", "BTEV", "iVDGL", "LIGO", "SDSS",
                    "USATLAS", "USCMS", "Exerciser"}};
  std::vector<monitoring::VoJobStats> measured;
  for (const auto& col : kPaper) {
    measured.push_back(db.stats_for(col.record_vo, w.from, w.to));
  }

  auto row = [&](const char* metric, auto paper_of, auto measured_of) {
    std::vector<std::string> p{metric, "paper"};
    std::vector<std::string> m{"", "measured"};
    for (std::size_t i = 0; i < measured.size(); ++i) {
      p.push_back(paper_of(kPaper[i]));
      m.push_back(measured_of(measured[i]));
    }
    table.add_row(p).add_row(m);
  };

  row(
      "Number of Users",
      [](const PaperColumn& c) { return AsciiTable::num(c.users, 0); },
      [](const monitoring::VoJobStats& s) {
        return AsciiTable::integer(static_cast<std::int64_t>(s.users));
      });
  row(
      "Grid3 Sites Used",
      [](const PaperColumn& c) { return AsciiTable::num(c.sites, 0); },
      [](const monitoring::VoJobStats& s) {
        return AsciiTable::integer(static_cast<std::int64_t>(s.sites_used));
      });
  row(
      "Number of Jobs",
      [](const PaperColumn& c) { return AsciiTable::num(c.jobs, 0); },
      [](const monitoring::VoJobStats& s) {
        return AsciiTable::integer(static_cast<std::int64_t>(s.jobs));
      });
  row(
      "Avg. Runtime (hr)",
      [](const PaperColumn& c) { return AsciiTable::num(c.avg_h, 2); },
      [](const monitoring::VoJobStats& s) {
        return AsciiTable::num(s.avg_runtime_hours, 2);
      });
  row(
      "Max. Runtime (hr)",
      [](const PaperColumn& c) { return AsciiTable::num(c.max_h, 2); },
      [](const monitoring::VoJobStats& s) {
        return AsciiTable::num(s.max_runtime_hours, 2);
      });
  row(
      "Total CPU (days)",
      [](const PaperColumn& c) { return AsciiTable::num(c.cpu_days, 2); },
      [](const monitoring::VoJobStats& s) {
        return AsciiTable::num(s.total_cpu_days, 2);
      });
  row(
      "Peak Rate (jobs/month)",
      [](const PaperColumn& c) { return AsciiTable::num(c.peak_jobs, 0); },
      [](const monitoring::VoJobStats& s) {
        return AsciiTable::integer(
            static_cast<std::int64_t>(s.peak_rate_jobs_per_month));
      });
  row(
      "Peak Prod. Resources",
      [](const PaperColumn& c) { return AsciiTable::num(c.peak_sites, 0); },
      [](const monitoring::VoJobStats& s) {
        return AsciiTable::integer(
            static_cast<std::int64_t>(s.peak_resources));
      });
  row(
      "Max. Single Resource [%]",
      [](const PaperColumn& c) {
        return AsciiTable::num(c.max_single_jobs, 0) + " [" +
               AsciiTable::num(c.max_single_pct, 1) + "]";
      },
      [](const monitoring::VoJobStats& s) {
        return AsciiTable::integer(
                   static_cast<std::int64_t>(s.max_single_resource_jobs)) +
               " [" + AsciiTable::num(s.max_single_resource_percent, 1) +
               "]";
      });
  row(
      "Peak Month-Year",
      [](const PaperColumn& c) { return std::string{c.peak_month}; },
      [](const monitoring::VoJobStats& s) {
        return s.jobs ? s.peak_month : std::string{"n/a"};
      });
  row(
      "Peak CPU (days)",
      [](const PaperColumn& c) { return AsciiTable::num(c.peak_cpu_days, 2); },
      [](const monitoring::VoJobStats& s) {
        return AsciiTable::num(s.peak_cpu_days, 2);
      });

  table.print(std::cout);
  std::size_t total = 0;
  for (const auto& s : measured) total += s.jobs;
  std::cout << "total completed production jobs: measured " << total
            << " vs paper sample 291052\n";
  bench::scale_note();
  return 0;
}
