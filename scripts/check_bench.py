#!/usr/bin/env python3
"""Bench-regression gate for CI.

Runs the gating ablation benches in quick mode (GRID3_BENCH_QUICK=1),
collects each binary's ``acceptance:`` verdict line and exit code,
re-checks recorded numbers from each bench's ``result-json:`` line
against the criteria in its registered checker, and writes a JSON
artifact summarising the run.  Every gated bench lives in REGISTRY:
name -> (numeric checker, committed baseline artifact) -- adding a gate
is one REGISTRY entry plus its checker.  A one-line PASS/FAIL table is
printed at the end.  Exits non-zero when any criterion fails, so a
regression in a docs/BENCH.md acceptance row fails the workflow.

Usage:
  check_bench.py <build-dir> [--out artifact.json]    # ablation gates
  check_bench.py <build-dir> --check-catalog [--out artifact.json]

--check-catalog runs the scenario-catalog determinism gate instead of
the ablation gates: ablation_catalog sweeps every catalog scenario
under both policy stacks, and each (scenario, stack) digest must match
the committed bench/CATALOG_MANIFEST.json byte for byte.
"""
from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time
from typing import Callable, NamedTuple

CATALOG_MANIFEST = "bench/CATALOG_MANIFEST.json"
# The catalog gate requires at least this many distinct scenarios (the
# catalog currently holds 10; the floor guards against an accidentally
# emptied sweep passing vacuously).
CATALOG_MIN_SCENARIOS = 8

# Kernel-throughput snapshot gate: `perf_kernel --snapshot` rates must
# stay within KERNEL_REGRESSION_RATIO of the committed baseline.  0.5
# tolerates shared-runner noise while still catching an accidental
# O(n) -> O(n log^2 n) slip in the queue or cancel bookkeeping.
KERNEL_BASELINE = "bench/BENCH_kernel.json"
KERNEL_KEYS = ("events_per_sec", "queue_ops_per_sec",
               "match_cycles_per_sec", "timer_events_per_sec",
               "flow_reallocs_per_sec")
KERNEL_REGRESSION_RATIO = 0.5

# Kernel-speedup floors (docs/BENCH.md): the calendar queue must beat
# the pure-heap baseline on the timer-storm workload, and the partial
# fair-share re-solve must beat the full-graph baseline on flow churn.
# Both baselines are measured in the same snapshot run, so runner speed
# cancels out and the floors can sit well above the noise band.
KERNEL_SPEEDUPS = (
    ("timer_events_per_sec", "timer_events_per_sec_heap", 2.0),
    ("flow_reallocs_per_sec", "flow_reallocs_per_sec_full", 3.0),
)


def run_bench(build_dir: pathlib.Path, name: str,
              extra_args: list[str] | None = None) -> dict:
    binary = build_dir / "bench" / name
    if not binary.exists():
        return {"name": name, "ok": False, "error": f"missing binary {binary}"}
    env = dict(os.environ, GRID3_BENCH_QUICK="1")
    started = time.monotonic()
    proc = subprocess.run(
        [str(binary), *(extra_args or [])],
        capture_output=True, text=True, env=env, timeout=1800,
    )
    elapsed = round(time.monotonic() - started, 1)
    acceptance = [
        line.strip()
        for line in proc.stdout.splitlines()
        if line.startswith("acceptance:")
    ]
    results = [
        json.loads(line.split(":", 1)[1])
        for line in proc.stdout.splitlines()
        if line.startswith("result-json:")
    ]
    entry = {
        "name": name,
        "exit_code": proc.returncode,
        "seconds": elapsed,
        "acceptance": acceptance,
        # Single-result benches read `result`; sweeps read `results`.
        "result": results[-1] if results else None,
        "results": results,
        "ok": proc.returncode == 0 and bool(acceptance),
    }
    if proc.returncode != 0:
        entry["error"] = "acceptance criterion failed (non-zero exit)"
        entry["tail"] = proc.stdout.splitlines()[-15:]
    elif not acceptance:
        entry["ok"] = False
        entry["error"] = "no acceptance: verdict line in output"
    return entry


def check_multise(entry: dict, repo_root: pathlib.Path) -> list[str]:
    """Re-verify the BENCH.md ablation_multise row from the raw numbers."""
    problems = []
    r = entry.get("result")
    if not r:
        return ["ablation_multise printed no result-json line"]
    if r["single_disk_full"] == 0:
        problems.append("single-SE baseline shows no disk-full failures; "
                        "the ablation no longer exercises the failure mode")
    if r["chain_disk_full"] * 5 > r["single_disk_full"]:
        problems.append(
            f"disk-full drop below 5x: {r['single_disk_full']} -> "
            f"{r['chain_disk_full']}")
    if r["chain_completed"] < r["single_completed"]:
        problems.append(
            f"chained completions regressed: {r['chain_completed']} < "
            f"{r['single_completed']}")
    if r["fallthroughs"] <= 0 or r["acdc_hops"] <= 0:
        problems.append("fallthrough hops not visible on bus/ACDC")
    return problems


def check_outage(entry: dict, repo_root: pathlib.Path) -> list[str]:
    """Re-verify the BENCH.md ablation_outage row from the raw numbers."""
    problems = []
    r = entry.get("result")
    if not r:
        return ["ablation_outage printed no result-json line"]
    if r["degraded_completed"] < 0.9 * r["baseline_completed"]:
        problems.append(
            f"degraded completions {r['degraded_completed']} fell below "
            f"90% of the no-outage baseline {r['baseline_completed']}")
    if r["degraded_lost"] != 0 or r["degraded_pending"] != 0:
        problems.append(
            f"degraded mode lost registrations: lost={r['degraded_lost']} "
            f"pending={r['degraded_pending']} (the journal must drain)")
    if r["degraded_visible"] != r["degraded_registered"]:
        problems.append(
            f"degraded catalog incomplete: {r['degraded_visible']} of "
            f"{r['degraded_registered']} registrations locatable")
    if r["naive_lost"] == 0:
        problems.append("naive baseline lost no registrations; the storm "
                        "no longer exercises the outage window")
    if r["naive_completed"] >= r["degraded_completed"]:
        problems.append(
            f"naive completions {r['naive_completed']} not below degraded "
            f"{r['degraded_completed']}; stale-view brokering shows no win")
    if r["stale_matches"] == 0 or r["degraded_replayed"] == 0:
        problems.append("mitigations idle: stale_matches="
                        f"{r['stale_matches']} replayed="
                        f"{r['degraded_replayed']}")
    return problems


def check_grid30(entry: dict, repo_root: pathlib.Path) -> list[str]:
    """Re-verify the BENCH.md grid30 row from the raw numbers."""
    problems = []
    r = entry.get("result")
    if not r:
        return ["grid30 printed no result-json line"]
    if r["sites"] != 270:
        problems.append(f"grid30 fabric is {r['sites']} sites, not 270")
    if r["match_speedup"] < 5.0:
        problems.append(
            f"incremental match speedup {r['match_speedup']:.2f}x is "
            "below the 5x floor")
    if not r["identical_decisions"]:
        problems.append(
            "incremental and full-rescore campaigns diverged; the rank "
            "cache changed a match decision")
    if not r.get("kernel_identical", False):
        problems.append(
            "calendar/partial kernel and legacy heap/full-resolve kernel "
            "produced different campaign logs; the fast paths changed "
            "behavior, not just cost")
    return problems


def check_catalog_results(entry: dict, repo_root: pathlib.Path) -> list[str]:
    """Verify the catalog sweep against the committed digest manifest."""
    problems = []
    results = entry.get("results") or []
    if not results:
        return ["ablation_catalog printed no result-json lines"]

    scenarios = {r["scenario"] for r in results}
    if len(scenarios) < CATALOG_MIN_SCENARIOS:
        problems.append(
            f"catalog sweep covered only {len(scenarios)} scenarios "
            f"(floor {CATALOG_MIN_SCENARIOS})")
    for r in results:
        if r["jobs"] == 0:
            problems.append(
                f"{r['scenario']}/{r['stack']}: produced no jobs")

    manifest_path = repo_root / CATALOG_MANIFEST
    if not manifest_path.exists():
        return problems + [f"missing committed manifest {CATALOG_MANIFEST}"]
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))

    # Digests are a function of (scenario, seed, stack): comparing under
    # a different seed or scale would flag every entry, so the digest
    # half of the gate only runs in the recorded environment.
    env_seed = int(float(os.environ.get("GRID3_SEED", "20031025")))
    scaled = any(os.environ.get(k) for k in ("GRID3_JOB_SCALE",
                                             "GRID3_CPU_SCALE"))
    if manifest.get("seed") != env_seed or scaled:
        print("    (seed/scale differs from the manifest; "
              "skipping digest comparison)")
        return problems

    expected = {(e["scenario"], e["stack"]): e["digest"]
                for e in manifest.get("entries", [])}
    seen = {(r["scenario"], r["stack"]): r["digest"] for r in results}
    for key, digest in sorted(expected.items()):
        got = seen.get(key)
        if got is None:
            problems.append(f"{key[0]}/{key[1]}: in manifest but not run")
        elif got != digest:
            problems.append(
                f"{key[0]}/{key[1]}: digest {got} != manifest {digest}; "
                "the run is nondeterministic or behavior changed -- if "
                f"intentional, refresh {CATALOG_MANIFEST} "
                "(ablation_catalog --manifest)")
    for key in sorted(seen.keys() - expected.keys()):
        problems.append(
            f"{key[0]}/{key[1]}: not in {CATALOG_MANIFEST}; refresh it")
    return problems


class Gate(NamedTuple):
    """One registry row: how to re-check a bench beyond its exit code."""
    checker: Callable[[dict, pathlib.Path], list[str]] | None = None
    # Committed baseline the gate compares against (must stay in-tree).
    artifact: str | None = None
    # Extra argv for the bench binary.
    args: tuple[str, ...] = ()


# The benches whose acceptance criteria gate the bench-smoke CI job.
# Each prints an `acceptance:` verdict and exits 0 only when its
# criterion holds; a registered checker re-derives the docs/BENCH.md
# row from the result-json numbers.
REGISTRY: dict[str, Gate] = {
    "ablation_broker": Gate(),
    "ablation_placement": Gate(),
    "ablation_blackhole": Gate(),
    "ablation_multise": Gate(checker=check_multise),
    "ablation_outage": Gate(checker=check_outage),
    "grid30": Gate(checker=check_grid30, artifact="bench/BENCH_grid30.json"),
}

# The catalog gate is its own CI job (catalog-smoke): one sweep binary,
# checked against the committed digest manifest.
CATALOG_REGISTRY: dict[str, Gate] = {
    "ablation_catalog": Gate(checker=check_catalog_results,
                             artifact=CATALOG_MANIFEST),
}


def check_kernel_snapshot(build_dir: pathlib.Path,
                          repo_root: pathlib.Path,
                          out_dir: pathlib.Path | None) -> tuple[dict, list[str]]:
    """Take a fresh perf_kernel snapshot and diff it against the
    committed baseline; a rate below KERNEL_REGRESSION_RATIO x baseline
    is a regression."""
    entry: dict = {"name": "perf_kernel_snapshot"}
    binary = build_dir / "bench" / "perf_kernel"
    if not binary.exists():
        entry["ok"] = False
        return entry, [f"missing binary {binary}"]
    snap_path = (out_dir or build_dir) / "BENCH_kernel.json"
    started = time.monotonic()
    proc = subprocess.run(
        [str(binary), "--snapshot", str(snap_path)],
        capture_output=True, text=True, timeout=600,
    )
    entry["seconds"] = round(time.monotonic() - started, 1)
    if proc.returncode != 0:
        entry["ok"] = False
        return entry, [f"perf_kernel --snapshot exited {proc.returncode}"]
    fresh = json.loads(snap_path.read_text(encoding="utf-8"))
    entry["fresh"] = fresh

    baseline_path = repo_root / KERNEL_BASELINE
    if not baseline_path.exists():
        entry["ok"] = False
        return entry, [f"missing committed baseline {KERNEL_BASELINE}"]
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    entry["baseline"] = baseline

    problems = []
    for key in KERNEL_KEYS:
        if key not in fresh:
            problems.append(f"snapshot missing {key}")
            continue
        old, new = float(baseline.get(key, 0)), float(fresh[key])
        ratio = new / old if old > 0 else float("inf")
        print(f"    {key}: {new:,.0f} vs baseline {old:,.0f} "
              f"({ratio:.2f}x)")
        if ratio < KERNEL_REGRESSION_RATIO:
            problems.append(
                f"kernel throughput regression: {key} {new:,.0f} is "
                f"{ratio:.2f}x the baseline {old:,.0f} "
                f"(floor {KERNEL_REGRESSION_RATIO}x); if intentional, "
                f"refresh {KERNEL_BASELINE}")
    for fast_key, base_key, floor in KERNEL_SPEEDUPS:
        if fast_key not in fresh or base_key not in fresh:
            problems.append(
                f"snapshot missing speedup pair {fast_key}/{base_key}")
            continue
        fast, base = float(fresh[fast_key]), float(fresh[base_key])
        speedup = fast / base if base > 0 else float("inf")
        print(f"    {fast_key} vs {base_key}: {speedup:.2f}x "
              f"(floor {floor}x)")
        if speedup < floor:
            problems.append(
                f"kernel speedup below floor: {fast_key} {fast:,.0f} is "
                f"only {speedup:.2f}x the {base_key} baseline "
                f"{base:,.0f} (floor {floor}x)")
    entry["ok"] = not problems
    return entry, problems


def check_bench_md(repo_root: pathlib.Path,
                   registry: dict[str, Gate]) -> list[str]:
    """Every gated bench must stay catalogued in docs/BENCH.md, and its
    committed baseline artifact (when registered) must exist."""
    problems = []
    bench_md = repo_root / "docs" / "BENCH.md"
    if not bench_md.exists():
        return [f"missing {bench_md}"]
    text = bench_md.read_text(encoding="utf-8")
    for name, gate in registry.items():
        if f"`{name}`" not in text:
            problems.append(f"`{name}` missing from docs/BENCH.md")
        if gate.artifact and not (repo_root / gate.artifact).exists():
            problems.append(f"{name}: missing committed artifact "
                            f"{gate.artifact}")
    return problems


def print_table(entries: list[dict]) -> None:
    """One-line PASS/FAIL summary per gate."""
    width = max(len(e["name"]) for e in entries) if entries else 10
    print(f"\n{'gate'.ljust(width)}  status  seconds")
    for e in entries:
        status = "PASS" if e.get("ok") else "FAIL"
        print(f"{e['name'].ljust(width)}  {status}    "
              f"{e.get('seconds', '?')}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir", type=pathlib.Path)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write a JSON artifact here")
    parser.add_argument("--check-catalog", action="store_true",
                        help="run the scenario-catalog determinism gate "
                             "instead of the ablation gates")
    args = parser.parse_args()
    repo_root = pathlib.Path(__file__).resolve().parent.parent

    registry = CATALOG_REGISTRY if args.check_catalog else REGISTRY
    problems = check_bench_md(repo_root, registry)
    entries = []
    for name, gate in registry.items():
        entry = run_bench(args.build_dir, name, list(gate.args))
        entries.append(entry)
        status = "PASS" if entry["ok"] else "FAIL"
        print(f"[{status}] {name} "
              f"({entry.get('seconds', '?')}s, exit {entry.get('exit_code')})")
        for line in entry.get("acceptance", []):
            print(f"    {line}")
        if not entry["ok"]:
            problems.append(f"{name}: {entry.get('error', 'failed')}")
        elif gate.checker is not None:
            extra = gate.checker(entry, repo_root)
            problems.extend(extra)
            if extra:
                entry["ok"] = False

    if not args.check_catalog:
        print("[....] perf_kernel snapshot")
        snap_entry, snap_problems = check_kernel_snapshot(
            args.build_dir, repo_root, args.out.parent if args.out else None)
        entries.append(snap_entry)
        problems.extend(snap_problems)
        print(f"[{'PASS' if snap_entry.get('ok') else 'FAIL'}] perf_kernel "
              f"snapshot ({snap_entry.get('seconds', '?')}s)")

    print_table(entries)

    artifact = {"quick_mode": True, "benches": entries, "problems": problems}
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(artifact, indent=2) + "\n",
                            encoding="utf-8")
        print(f"artifact written to {args.out}")

    if problems:
        print("\nbench gate FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nbench gate passed: every acceptance criterion holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
