#!/usr/bin/env python3
"""Fail on broken relative links in the repository's Markdown files.

Checks every inline Markdown link ``[text](target)`` whose target is a
relative path (external URLs and pure in-page anchors are skipped) and
verifies the target exists relative to the file containing the link.
Anchor fragments on relative links (``FILE.md#section``) are checked
for file existence only. Standard library only; exits non-zero with
one line per broken link.
"""
import os
import re
import sys

# Inline links only; reference-style definitions are rare enough here
# that the inline pattern covers the repo. Targets must not contain
# whitespace or a closing paren (Markdown would not parse those either).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {".git", "build", ".github"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://", "gsiftp://")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            for target in LINK_RE.findall(line):
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), rel))
                if not os.path.exists(resolved):
                    broken.append((lineno, target))
    return broken


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = 0
    for path in sorted(md_files(root)):
        for lineno, target in check_file(path, root):
            print(f"{os.path.relpath(path, root)}:{lineno}: "
                  f"broken relative link: {target}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print("all relative Markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
